// Package automata provides the finite-automata substrate of the UDP
// reproduction: a regular-expression compiler (Thompson construction),
// subset-construction determinization, DFA minimization, D2FA-style default
// compression (the paper's ADFA model [66]), and compilers from automata to
// UDP programs in both single-active (DFA) and multi-active (NFA) execution
// modes.
package automata

import (
	"fmt"
	"strings"
)

// node is a parsed regex AST node.
type node struct {
	op       nodeOp
	lo, hi   byte       // opRange
	set      *[256]bool // opClass
	sub      []*node    // operands
	min, max int        // opRepeat ({m,n}; max -1 = unbounded)
}

type nodeOp uint8

const (
	opEmpty nodeOp = iota
	opRange        // single byte range [lo,hi]
	opClass        // arbitrary byte set
	opConcat
	opAlt
	opStar
	opPlus
	opOpt
	opRepeat
)

// parser is a recursive-descent parser for the supported regex subset:
// literals, '.', escapes (\n \t \r \\ \. \d \D \w \W \s \S \xHH), classes
// [a-z0-9^-], grouping (), alternation |, and the postfix operators
// * + ? {m} {m,} {m,n}. A leading '^' (handled by CompileRegexFold) anchors
// the pattern to the stream start; '$' is not supported (byte automata
// cannot observe end-of-stream).
type parser struct {
	src string
	pos int
}

// ParseRegex parses pattern into an AST; it returns an error describing the
// first syntax problem.
func ParseRegex(pattern string) (*node, error) {
	p := &parser{src: pattern}
	n, err := p.alt()
	if err != nil {
		return nil, fmt.Errorf("regex %q: %w", pattern, err)
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("regex %q: unexpected %q at %d", pattern, p.src[p.pos], p.pos)
	}
	return n, nil
}

func (p *parser) alt() (*node, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	subs := []*node{first}
	for p.peek() == '|' {
		p.pos++
		n, err := p.concat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	if len(subs) == 1 {
		return first, nil
	}
	return &node{op: opAlt, sub: subs}, nil
}

func (p *parser) concat() (*node, error) {
	var subs []*node
	for {
		c := p.peek()
		if c == 0 || c == '|' || c == ')' {
			break
		}
		n, err := p.repeat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	switch len(subs) {
	case 0:
		return &node{op: opEmpty}, nil
	case 1:
		return subs[0], nil
	}
	return &node{op: opConcat, sub: subs}, nil
}

func (p *parser) repeat() (*node, error) {
	n, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			n = &node{op: opStar, sub: []*node{n}}
		case '+':
			p.pos++
			n = &node{op: opPlus, sub: []*node{n}}
		case '?':
			p.pos++
			n = &node{op: opOpt, sub: []*node{n}}
		case '{':
			m, mx, ok, err := p.bounds()
			if err != nil {
				return nil, err
			}
			if !ok {
				return n, nil
			}
			n = &node{op: opRepeat, sub: []*node{n}, min: m, max: mx}
		default:
			return n, nil
		}
	}
}

// bounds parses {m}, {m,}, {m,n}; ok=false when '{' is a literal.
func (p *parser) bounds() (int, int, bool, error) {
	save := p.pos
	p.pos++ // '{'
	m, ok := p.number()
	if !ok {
		p.pos = save
		return 0, 0, false, nil
	}
	mx := m
	if p.peek() == ',' {
		p.pos++
		if p.peek() == '}' {
			mx = -1
		} else {
			v, ok := p.number()
			if !ok {
				return 0, 0, false, fmt.Errorf("bad repetition bound at %d", p.pos)
			}
			mx = v
		}
	}
	if p.peek() != '}' {
		p.pos = save
		return 0, 0, false, nil
	}
	p.pos++
	if mx != -1 && mx < m || m > 255 || mx > 255 {
		return 0, 0, false, fmt.Errorf("repetition bounds {%d,%d} invalid", m, mx)
	}
	return m, mx, true, nil
}

func (p *parser) number() (int, bool) {
	start := p.pos
	v := 0
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		v = v*10 + int(p.src[p.pos]-'0')
		p.pos++
		if v > 1<<20 {
			return 0, false
		}
	}
	return v, p.pos > start
}

func (p *parser) atom() (*node, error) {
	c := p.peek()
	switch c {
	case '(':
		p.pos++
		n, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ) at %d", p.pos)
		}
		p.pos++
		return n, nil
	case '[':
		return p.class()
	case '.':
		p.pos++
		return &node{op: opRange, lo: 0, hi: 255}, nil
	case '\\':
		p.pos++
		return p.escape()
	case 0:
		return nil, fmt.Errorf("unexpected end of pattern")
	case '*', '+', '?':
		return nil, fmt.Errorf("dangling %q at %d", c, p.pos)
	default:
		p.pos++
		return &node{op: opRange, lo: c, hi: c}, nil
	}
}

func (p *parser) escape() (*node, error) {
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("trailing backslash")
	}
	c := p.src[p.pos]
	p.pos++
	lit := func(b byte) *node { return &node{op: opRange, lo: b, hi: b} }
	switch c {
	case 'n':
		return lit('\n'), nil
	case 't':
		return lit('\t'), nil
	case 'r':
		return lit('\r'), nil
	case '0':
		return lit(0), nil
	case 'd', 'D', 'w', 'W', 's', 'S':
		set := classSet(c)
		return &node{op: opClass, set: set}, nil
	case 'x':
		if p.pos+2 > len(p.src) {
			return nil, fmt.Errorf("bad \\x escape")
		}
		hi, ok1 := hexVal(p.src[p.pos])
		lo, ok2 := hexVal(p.src[p.pos+1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("bad \\x escape")
		}
		p.pos += 2
		return lit(hi<<4 | lo), nil
	default:
		return lit(c), nil
	}
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func classSet(c byte) *[256]bool {
	var s [256]bool
	mark := func(lo, hi byte) {
		for b := int(lo); b <= int(hi); b++ {
			s[b] = true
		}
	}
	switch c {
	case 'd', 'D':
		mark('0', '9')
	case 'w', 'W':
		mark('0', '9')
		mark('a', 'z')
		mark('A', 'Z')
		s['_'] = true
	case 's', 'S':
		for _, b := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
			s[b] = true
		}
	}
	if c == 'D' || c == 'W' || c == 'S' {
		for i := range s {
			s[i] = !s[i]
		}
	}
	return &s
}

func (p *parser) class() (*node, error) {
	p.pos++ // '['
	var s [256]bool
	negate := false
	if p.peek() == '^' {
		negate = true
		p.pos++
	}
	first := true
	for {
		c := p.peek()
		if c == 0 {
			return nil, fmt.Errorf("missing ] ")
		}
		if c == ']' && !first {
			p.pos++
			break
		}
		first = false
		var lo byte
		if c == '\\' {
			p.pos++
			n, err := p.escape()
			if err != nil {
				return nil, err
			}
			if n.op == opClass {
				for i, v := range n.set {
					if v {
						s[i] = true
					}
				}
				continue
			}
			lo = n.lo
		} else {
			lo = c
			p.pos++
		}
		hi := lo
		if p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++
			h := p.peek()
			if h == '\\' {
				p.pos++
				n, err := p.escape()
				if err != nil {
					return nil, err
				}
				if n.op != opRange || n.lo != n.hi {
					return nil, fmt.Errorf("bad class range end")
				}
				h = n.lo
			} else {
				p.pos++
			}
			hi = h
		}
		if hi < lo {
			return nil, fmt.Errorf("inverted class range %q-%q", lo, hi)
		}
		for b := int(lo); b <= int(hi); b++ {
			s[b] = true
		}
	}
	if negate {
		for i := range s {
			s[i] = !s[i]
		}
	}
	return &node{op: opClass, set: &s}, nil
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

// LiteralPattern reports whether pattern is a plain string (no regex
// metacharacters), the "simple" workload class of paper Figure 16.
func LiteralPattern(pattern string) bool {
	return !strings.ContainsAny(pattern, `.*+?|()[]{}\^$`)
}
