package automata

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Dead marks the absence of a DFA transition.
const Dead int32 = -1

// DState is one DFA state: a full 256-way next table plus the set of
// patterns accepted on entering it.
type DState struct {
	Next    [256]int32
	Accepts []int32
}

// DFA is a deterministic automaton over bytes.
type DFA struct {
	Start  int
	States []DState
}

// Determinize runs subset construction over an epsilon-free NFA, failing
// once maxStates subsets have been created (0 means 1<<16).
func Determinize(n *NFA, maxStates int) (*DFA, error) {
	if maxStates == 0 {
		maxStates = 1 << 16
	}
	key := func(set []int) string {
		var b strings.Builder
		for _, s := range set {
			b.WriteString(strconv.Itoa(s))
			b.WriteByte(',')
		}
		return b.String()
	}
	d := &DFA{}
	index := map[string]int{}
	var sets [][]int
	mk := func(set []int) (int, error) {
		k := key(set)
		if id, ok := index[k]; ok {
			return id, nil
		}
		if len(d.States) >= maxStates {
			return 0, fmt.Errorf("automata: subset construction exceeded %d states", maxStates)
		}
		id := len(d.States)
		index[k] = id
		sets = append(sets, set)
		st := DState{}
		for i := range st.Next {
			st.Next[i] = Dead
		}
		accSet := map[int32]bool{}
		for _, q := range set {
			for _, a := range n.States[q].Accepts {
				accSet[a] = true
			}
			if a := n.States[q].Accept; a != NoAccept {
				accSet[a] = true
			}
		}
		for a := range accSet {
			st.Accepts = append(st.Accepts, a)
		}
		sort.Slice(st.Accepts, func(i, j int) bool { return st.Accepts[i] < st.Accepts[j] })
		d.States = append(d.States, st)
		return id, nil
	}
	start, err := mk([]int{n.Start})
	if err != nil {
		return nil, err
	}
	d.Start = start
	for id := 0; id < len(d.States); id++ {
		set := sets[id]
		// move(set, b) for all b at once
		var move [256]map[int]bool
		for _, q := range set {
			for _, e := range n.States[q].Edges {
				for b := int(e.Lo); b <= int(e.Hi); b++ {
					if move[b] == nil {
						move[b] = map[int]bool{}
					}
					move[b][e.To] = true
				}
			}
		}
		for b := 0; b < 256; b++ {
			if move[b] == nil {
				continue
			}
			tgt := make([]int, 0, len(move[b]))
			for q := range move[b] {
				tgt = append(tgt, q)
			}
			sort.Ints(tgt)
			tid, err := mk(tgt)
			if err != nil {
				return nil, err
			}
			d.States[id].Next[b] = int32(tid)
		}
	}
	return d, nil
}

// Minimize returns an equivalent DFA with Hopcroft-style partition
// refinement (Moore's algorithm; adequate at our state counts). Dead
// transitions stay dead.
func (d *DFA) Minimize() *DFA {
	n := len(d.States)
	// Initial partition by accept signature (and deadness pattern is
	// refined iteratively).
	sig := make(map[string][]int)
	part := make([]int, n)
	for i, s := range d.States {
		var b strings.Builder
		for _, a := range s.Accepts {
			fmt.Fprintf(&b, "%d,", a)
		}
		sig[b.String()] = append(sig[b.String()], i)
	}
	keys := make([]string, 0, len(sig))
	for k := range sig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for pi, k := range keys {
		for _, s := range sig[k] {
			part[s] = pi
		}
	}
	nparts := len(keys)
	for {
		// Refine: states in the same part must agree on the part of
		// every successor.
		next := make(map[string]int)
		newPart := make([]int, n)
		changed := false
		for i := range d.States {
			var b strings.Builder
			fmt.Fprintf(&b, "%d|", part[i])
			for c := 0; c < 256; c++ {
				t := d.States[i].Next[c]
				if t == Dead {
					b.WriteString("-,")
				} else {
					fmt.Fprintf(&b, "%d,", part[t])
				}
			}
			k := b.String()
			id, ok := next[k]
			if !ok {
				id = len(next)
				next[k] = id
			}
			newPart[i] = id
		}
		newCount := len(next)
		if newCount == nparts {
			break
		}
		copy(part, newPart)
		nparts = newCount
		changed = true
		_ = changed
	}
	out := &DFA{}
	out.States = make([]DState, nparts)
	rep := make([]int, nparts)
	for i := range rep {
		rep[i] = -1
	}
	for i := range d.States {
		if rep[part[i]] == -1 {
			rep[part[i]] = i
		}
	}
	for pi, r := range rep {
		st := DState{Accepts: d.States[r].Accepts}
		for c := 0; c < 256; c++ {
			if t := d.States[r].Next[c]; t == Dead {
				st.Next[c] = Dead
			} else {
				st.Next[c] = int32(part[t])
			}
		}
		out.States[pi] = st
	}
	out.Start = part[d.Start]
	return out
}

// Match runs the DFA over data with table-lookup semantics (the CPU
// branch-indirect baseline), recording accepts. A dead transition restarts at
// the start state (patterns are compiled unanchored, so this only occurs for
// anchored automata).
func (d *DFA) Match(data []byte) []MatchEvent {
	var events []MatchEvent
	q := int32(d.Start)
	for i, b := range data {
		q = d.States[q].Next[b]
		if q == Dead {
			q = int32(d.Start)
			continue
		}
		for _, a := range d.States[q].Accepts {
			events = append(events, MatchEvent{a, i + 1})
		}
	}
	return events
}

// Stats summarizes DFA shape.
type DFAStats struct {
	States      int
	Transitions int // non-dead entries
}

// Stats counts live transitions.
func (d *DFA) Stats() DFAStats {
	st := DFAStats{States: len(d.States)}
	for _, s := range d.States {
		for _, t := range s.Next {
			if t != Dead {
				st.Transitions++
			}
		}
	}
	return st
}
