package automata

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"udp/internal/core"
	"udp/internal/effclip"
	"udp/internal/machine"
)

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"(", "a)", "[", "a{3,1}", `\x9`, "*a", "[z-a]"} {
		if _, err := ParseRegex(bad); err == nil {
			t.Errorf("pattern %q: expected parse error", bad)
		}
	}
	for _, ok := range []string{"abc", "a|b", "a*b+c?", "[a-z0-9_]+", `\d{2,4}`,
		`a\.b`, "(ab|cd)*e", `\x41\x42`, "[^\\n]*", "a{3}"} {
		if _, err := ParseRegex(ok); err != nil {
			t.Errorf("pattern %q: unexpected error %v", ok, err)
		}
	}
}

// matchStrings runs an NFA-based matcher and reports matched end positions
// per pattern id.
func nfaFor(t *testing.T, pattern string) *NFA {
	t.Helper()
	n, err := CompileRegex(pattern, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	return n.EpsFree()
}

func TestNFAMatchBasics(t *testing.T) {
	cases := []struct {
		pattern string
		input   string
		ends    []int
	}{
		{"abc", "xxabcxxabc", []int{5, 10}},
		{"a+b", "aaab", []int{4}},
		{"a|b", "ab", []int{1, 2}},
		{"[0-9]{2}", "a12b345", []int{3, 6, 7}},
		{"colou?r", "color colour", []int{5, 12}},
		{"(ab)+", "ababab", []int{2, 4, 6}},
		{"x.z", "xyz xz xaz", []int{3, 10}},
		{`\d+\.\d+`, "pi=3.14.", []int{6, 7}},
	}
	for _, c := range cases {
		n := nfaFor(t, c.pattern)
		var ends []int
		for _, e := range n.Match([]byte(c.input)) {
			ends = append(ends, e.End)
		}
		if !reflect.DeepEqual(ends, c.ends) {
			t.Errorf("pattern %q on %q: ends %v, want %v", c.pattern, c.input, ends, c.ends)
		}
	}
}

func TestDFAAgreesWithNFA(t *testing.T) {
	patterns := []string{"abc", "a(b|c)d", "[a-f]{3}", "ab*c", "x[0-9]+y"}
	var ns []*NFA
	for i, p := range patterns {
		n, err := CompileRegex(p, int32(i), true)
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, n)
	}
	merged := MergeNFAs(ns).EpsFree()
	d, err := Determinize(merged, 0)
	if err != nil {
		t.Fatal(err)
	}
	dm := d.Minimize()

	rng := rand.New(rand.NewSource(7))
	alphabet := []byte("abcdefxy0123 ")
	for trial := 0; trial < 50; trial++ {
		buf := make([]byte, 120)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		want := merged.Match(buf)
		got := d.Match(buf)
		gotMin := dm.Match(buf)
		if !sameEvents(want, got) {
			t.Fatalf("trial %d: DFA disagrees with NFA\nnfa=%v\ndfa=%v\ninput=%q", trial, want, got, buf)
		}
		if !sameEvents(want, gotMin) {
			t.Fatalf("trial %d: minimized DFA disagrees\nnfa=%v\nmin=%v", trial, want, gotMin)
		}
	}
	if len(dm.States) > len(d.States) {
		t.Fatalf("minimization grew the DFA: %d -> %d", len(d.States), len(dm.States))
	}
}

func sameEvents(a, b []MatchEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runUDP lays out and executes a compiled program on input, returning match
// events in MatchEvent form (bit positions converted to byte ends).
func runUDP(t *testing.T, p *core.Program, input []byte) []MatchEvent {
	t.Helper()
	im, err := effclip.Layout(p, effclip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lane, err := machine.RunSingle(im, input)
	if err != nil {
		t.Fatal(err)
	}
	var events []MatchEvent
	for _, m := range lane.Matches() {
		events = append(events, MatchEvent{m.PatternID, int(m.BitPos / 8)})
	}
	return events
}

// TestUDPDFAMatchesReference cross-validates the UDP single-active execution
// of a compiled DFA against the software matcher for all three styles.
func TestUDPDFAMatchesReference(t *testing.T) {
	patterns := []string{"attack", "GET /[a-z]+", "rm -rf", "[0-9]{4}-[0-9]{2}"}
	var ns []*NFA
	for i, pat := range patterns {
		n, err := CompileRegex(pat, int32(i), true)
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, n)
	}
	merged := MergeNFAs(ns).EpsFree()
	d, err := Determinize(merged, 0)
	if err != nil {
		t.Fatal(err)
	}
	d = d.Minimize()
	input := []byte("GET /index HTTP attack here 2024-06 rm -rf / GET /abc attack")
	want := d.Match(input)

	for _, style := range []DFAStyle{StyleADFA, StyleTable, StyleMajority} {
		p, err := CompileDFA(d, "nids", style)
		if err != nil {
			t.Fatal(err)
		}
		got := runUDP(t, p, input)
		if !sameEvents(want, got) {
			t.Fatalf("style %d: UDP events %v, want %v", style, got, want)
		}
	}
}

// TestUDPNFAMatchesReference cross-validates multi-active UDP execution.
func TestUDPNFAMatchesReference(t *testing.T) {
	patterns := []string{"ab+c", "a.c", "bc"}
	var ns []*NFA
	for i, pat := range patterns {
		n, err := CompileRegex(pat, int32(i), true)
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, n)
	}
	merged := MergeNFAs(ns).EpsFree()
	input := []byte("zabcc abbbc axc bc")
	want := merged.Match(input)

	p, err := CompileNFA(merged, "nfa", false)
	if err != nil {
		t.Fatal(err)
	}
	got := runUDP(t, p, input)
	// UDP reports in stream order; reference sorts by (end, id). Sort ours
	// the same way.
	sortEvents(got)
	sortEvents(want)
	if !sameEvents(want, got) {
		t.Fatalf("UDP NFA events %v, want %v", got, want)
	}
}

func sortEvents(ev []MatchEvent) {
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && (ev[j].End < ev[j-1].End || ev[j].End == ev[j-1].End && ev[j].ID < ev[j-1].ID); j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

// TestADFACompression checks that the ADFA style produces a materially
// smaller image than the flat table for a typical pattern set.
func TestADFACompression(t *testing.T) {
	patterns := []string{"evil", "worm[0-9]+", "bad(stuff|things)", "overflow"}
	var ns []*NFA
	for i, pat := range patterns {
		n, err := CompileRegex(pat, int32(i), true)
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, n)
	}
	d, err := Determinize(MergeNFAs(ns).EpsFree(), 0)
	if err != nil {
		t.Fatal(err)
	}
	d = d.Minimize()
	table, err := CompileDFA(d, "t", StyleTable)
	if err != nil {
		t.Fatal(err)
	}
	adfa, err := CompileDFA(d, "a", StyleADFA)
	if err != nil {
		t.Fatal(err)
	}
	ts, as := table.Stats(), adfa.Stats()
	if as.Transitions*2 > ts.Transitions {
		t.Fatalf("ADFA %d transitions vs table %d: expected >2x compression", as.Transitions, ts.Transitions)
	}
}

// TestDeterminizeCap ensures the state cap triggers instead of exploding.
func TestDeterminizeCap(t *testing.T) {
	n, err := CompileRegex("a.{12}b", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Determinize(n.EpsFree(), 64); err == nil {
		t.Fatal("expected state-cap error")
	}
}

func TestLiteralPattern(t *testing.T) {
	if !LiteralPattern("hello world") || LiteralPattern("a+b") {
		t.Fatal("literal classification")
	}
}

func TestRepeatBounds(t *testing.T) {
	n := nfaFor(t, "a{2,3}")
	check := func(in string, want int) {
		got := len(n.Match([]byte(in)))
		if got != want {
			t.Errorf("a{2,3} on %q: %d events, want %d", in, got, want)
		}
	}
	check("a", 0)
	check("aa", 1)
	check("aaa", 2)  // ends at 2 and 3
	check("aaaa", 3) // ends at 2,3,4
	check("b aa b", 1)
	if strings.Repeat("a", 3) != "aaa" {
		t.Fatal("sanity")
	}
}

func TestCaseInsensitiveCompile(t *testing.T) {
	n, err := CompileRegexFold("Attack[a-c]+", 0, true, true)
	if err != nil {
		t.Fatal(err)
	}
	ef := n.EpsFree()
	for _, in := range []string{"xxATTACKabc", "attackB", "AtTaCkC"} {
		if len(ef.Match([]byte(in))) == 0 {
			t.Errorf("fold should match %q", in)
		}
	}
	if len(ef.Match([]byte("attack9"))) != 0 {
		t.Error("digit must not match the folded class")
	}
	// Folding must not disturb non-letters.
	n2, err := CompileRegexFold(`\d{2}`, 0, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(n2.EpsFree().Match([]byte("ab12"))) == 0 {
		t.Error("digits unaffected by folding")
	}
}
