package sched

import (
	"context"
	"testing"

	"udp/internal/obs"
)

// TestRunMergesProfile: the executor-attached profiler must account for every
// shard's dispatches when sampling is off (every shard profiled).
func TestRunMergesProfile(t *testing.T) {
	im := echoImage(t)
	shards := [][]byte{[]byte("aaaa"), []byte("bbbb"), []byte("cccc"), []byte("dddd")}
	prof := obs.NewProfile("echo", obs.InvertStateBase(im.StateBase))
	res, err := Run(context.Background(), im, Slice(shards), Config{
		Lanes:   2,
		Profile: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := prof.Snapshot()
	if snap.Dispatches != res.Total.Dispatches {
		t.Fatalf("profile dispatches = %d, run total = %d", snap.Dispatches, res.Total.Dispatches)
	}
	if snap.Shards != uint64(res.Shards) {
		t.Fatalf("profile shards = %d, run shards = %d", snap.Shards, res.Shards)
	}
	if len(snap.States) != 1 || snap.States[0].Name != "s" {
		t.Fatalf("hot states: %+v", snap.States)
	}
}

// TestRunProfileSampling: with ProfileSample = 2 only even stream indices are
// profiled, so the sampled shard count halves while the run sees them all.
func TestRunProfileSampling(t *testing.T) {
	im := echoImage(t)
	shards := make([][]byte, 8)
	for i := range shards {
		shards[i] = []byte("xxxx")
	}
	prof := obs.NewProfile("echo", nil)
	res, err := Run(context.Background(), im, Slice(shards), Config{
		Lanes:         2,
		Profile:       prof,
		ProfileSample: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 8 {
		t.Fatalf("run shards = %d", res.Shards)
	}
	snap := prof.Snapshot()
	if snap.Shards != 4 {
		t.Fatalf("sampled shards = %d, want 4 (every 2nd of 8)", snap.Shards)
	}
	// 4 shards × 4 symbols: exactly half the run's dispatches.
	if snap.Dispatches != res.Total.Dispatches/2 {
		t.Fatalf("sampled dispatches = %d, run total = %d", snap.Dispatches, res.Total.Dispatches)
	}
}

// TestRunNoProfileNoMerge: a nil Profile leaves the config path disabled.
func TestRunNoProfileNoMerge(t *testing.T) {
	im := echoImage(t)
	if _, err := Run(context.Background(), im, Slice([][]byte{[]byte("ok")}), Config{}); err != nil {
		t.Fatal(err)
	}
}

// TestRunEmitsShardSpans: a span carried in the context becomes the parent of
// one "shard" child per shard, each with a "lane.run" grandchild.
func TestRunEmitsShardSpans(t *testing.T) {
	im := echoImage(t)
	shards := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}

	tr := obs.NewTracer(4)
	root := tr.StartRoot("request", obs.SpanContext{})
	ctx := obs.ContextWithSpan(context.Background(), root)
	if _, err := Run(ctx, im, Slice(shards), Config{Lanes: 2}); err != nil {
		t.Fatal(err)
	}
	root.End()

	traces := tr.Export().Traces
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	rt := traces[0]
	if len(rt.Children) != len(shards) {
		t.Fatalf("shard spans = %d, want %d", len(rt.Children), len(shards))
	}
	seen := make(map[int]bool)
	for _, ch := range rt.Children {
		if ch.Name != "shard" || ch.ParentID != rt.SpanID {
			t.Fatalf("bad shard span: %+v", ch)
		}
		idx, ok := ch.Attrs["shard"].(int)
		if !ok {
			t.Fatalf("shard span missing shard attr: %v", ch.Attrs)
		}
		seen[idx] = true
		if _, ok := ch.Attrs["cycles"]; !ok {
			t.Fatalf("shard span missing cycles attr: %v", ch.Attrs)
		}
		if len(ch.Children) != 1 || ch.Children[0].Name != "lane.run" {
			t.Fatalf("lane.run span missing: %+v", ch.Children)
		}
	}
	for i := range shards {
		if !seen[i] {
			t.Fatalf("no span for shard %d (saw %v)", i, seen)
		}
	}
}

// TestRunNoSpanNoTrace: without a context span the run must not create spans
// (nil-span fast path).
func TestRunNoSpanNoTrace(t *testing.T) {
	im := echoImage(t)
	if _, err := Run(context.Background(), im, Slice([][]byte{[]byte("ok")}), Config{}); err != nil {
		t.Fatal(err)
	}
}
