package sched

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"udp/internal/fault"
	"udp/internal/machine"
)

// panicSetup panics on the shards in bad — the host-level failure the
// sandbox must contain.
func panicSetup(bad map[int]bool) machine.LaneSetup {
	return func(l *machine.Lane, shard int) error {
		if bad[shard] {
			panic("poisoned shard")
		}
		return nil
	}
}

func TestPanicIsSandboxedAsTrap(t *testing.T) {
	im := echoImage(t)
	shards := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}
	res, err := Run(context.Background(), im, Slice(shards), Config{
		Lanes:  1,
		Policy: CollectErrors,
		Setup:  panicSetup(map[int]bool{1: true}),
	})
	if err != nil {
		t.Fatalf("a sandboxed panic must not kill the run: %v", err)
	}
	if len(res.Errors) != 1 || res.Errors[0].Shard != 1 {
		t.Fatalf("errors %v, want shard 1 only", res.Errors)
	}
	if !errors.Is(res.Errors[0].Err, fault.TrapPanic) {
		t.Fatalf("shard error %v, want TrapPanic", res.Errors[0].Err)
	}
	var tr *fault.Trap
	if !errors.As(res.Errors[0].Err, &tr) || !contains(tr.Detail, "poisoned shard") {
		t.Fatalf("trap detail %q must carry the panic value", tr.Detail)
	}
	if res.LanesQuarantined != 1 {
		t.Fatalf("LanesQuarantined = %d, want 1", res.LanesQuarantined)
	}
	// The healthy shards around the panic completed on replacement lanes.
	if string(res.Outputs[0]) != "aa" || string(res.Outputs[2]) != "cc" {
		t.Fatal("healthy shards lost around the quarantine")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestInjectedPanicRetriesToSuccess(t *testing.T) {
	im := echoImage(t)
	shards := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	var events []Event
	res, err := Run(context.Background(), im, Slice(shards), Config{
		Lanes:  2,
		Inject: &fault.Injector{Seed: 1, Once: true, Rates: map[fault.Kind]float64{fault.TrapPanic: 1}},
		Retry:  RetryPolicy{Max: 2, Backoff: 100 * time.Microsecond},
		Hook:   func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatalf("Once-injection with retries must converge: %v", err)
	}
	if res.Retries != len(shards) {
		t.Fatalf("Retries = %d, want %d (every shard injected once)", res.Retries, len(shards))
	}
	if len(res.Faults) != len(shards) {
		t.Fatalf("Faults = %d records, want %d", len(res.Faults), len(shards))
	}
	for _, f := range res.Faults {
		if f.Trap.Kind != fault.TrapPanic || !f.Retried || f.Backoff <= 0 {
			t.Fatalf("fault record %+v, want retried panic with backoff", f)
		}
	}
	for i, s := range shards {
		if string(res.Outputs[i]) != string(s) {
			t.Fatalf("shard %d output %q, want %q", i, res.Outputs[i], s)
		}
	}
	// Every shard emits one failed attempt-0 event and one clean attempt-1.
	byShard := map[int][]Event{}
	for _, e := range events {
		byShard[e.Shard] = append(byShard[e.Shard], e)
	}
	for shard, evs := range byShard {
		if len(evs) != 2 {
			t.Fatalf("shard %d emitted %d events, want 2", shard, len(evs))
		}
	}
}

func TestRetriesExhaustedSurfacesTrap(t *testing.T) {
	im := echoImage(t)
	// Rate 1 without Once: every attempt injects, so retries run dry.
	_, err := Run(context.Background(), im, Slice([][]byte{[]byte("x")}), Config{
		Inject: &fault.Injector{Seed: 3, Rates: map[fault.Kind]float64{fault.TrapCycleBudget: 1}},
		Retry: RetryPolicy{
			Max: 2, Backoff: 50 * time.Microsecond,
			RetryableTraps: []fault.Kind{fault.TrapCycleBudget},
		},
	})
	if !errors.Is(err, fault.TrapCycleBudget) {
		t.Fatalf("err = %v, want the exhausted TrapCycleBudget", err)
	}
	var se ShardError
	if !errors.As(err, &se) || se.Shard != 0 {
		t.Fatalf("err = %v, want ShardError for shard 0", err)
	}
}

func TestNonRetryableTrapFailsWithoutRetry(t *testing.T) {
	im := strictImage(t) // only accepts 'a': "b" raises TrapBadSignature
	res, err := Run(context.Background(), im, Slice([][]byte{[]byte("b")}), Config{
		Policy: CollectErrors,
		Retry:  RetryPolicy{Max: 3, Backoff: 50 * time.Microsecond}, // nil list = panic only
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Fatalf("Retries = %d for a non-retryable trap, want 0", res.Retries)
	}
	if len(res.Faults) != 1 || res.Faults[0].Retried {
		t.Fatalf("faults %+v, want one unretried record", res.Faults)
	}
	if !errors.Is(res.Errors[0].Err, fault.TrapBadSignature) {
		t.Fatalf("err %v, want TrapBadSignature", res.Errors[0].Err)
	}
}

func TestCycleBudgetTrapsPerShardSize(t *testing.T) {
	im := echoImage(t)
	// The echo program needs ~1 cycle per byte; a fractional budget of
	// PerByte=0+Floor=2 traps any shard longer than a couple of symbols.
	_, err := Run(context.Background(), im, Slice([][]byte{[]byte("aaaaaaaa")}), Config{
		Budget: CycleBudget{Floor: 2},
	})
	if !errors.Is(err, fault.TrapCycleBudget) {
		t.Fatalf("err = %v, want TrapCycleBudget from the shard budget", err)
	}
	// A generous per-byte budget clears the same shard.
	if _, err := Run(context.Background(), im, Slice([][]byte{[]byte("aaaaaaaa")}), Config{
		Budget: CycleBudget{PerByte: 64, Floor: 64},
	}); err != nil {
		t.Fatalf("generous budget must pass: %v", err)
	}
}

func TestCycleBudgetFor(t *testing.T) {
	if got := (CycleBudget{}).For(1 << 20); got != 0 {
		t.Fatalf("zero budget gave %d, want 0 (machine default)", got)
	}
	b := CycleBudget{PerByte: 4, Floor: 100}
	if got := b.For(10); got != 100 {
		t.Fatalf("floor not honored: %d", got)
	}
	if got := b.For(1000); got != 4000 {
		t.Fatalf("per-byte not honored: %d", got)
	}
}

func TestRetryBackoffDecorrelatedJitter(t *testing.T) {
	p := RetryPolicy{Max: 3, Backoff: time.Millisecond, Rand: func() float64 { return 1 }}
	d1 := p.next(0)
	d2 := p.next(d1)
	d3 := p.next(d2)
	if d1 != 3*time.Millisecond { // base + 1.0*(3*base - base)
		t.Fatalf("first backoff %v, want 3ms", d1)
	}
	if d2 <= d1 || d3 <= d2 {
		t.Fatalf("backoffs %v, %v, %v must grow at rand=1", d1, d2, d3)
	}
	if cap := 32 * time.Millisecond; p.next(cap) > cap {
		t.Fatal("default cap exceeded")
	}
	// rand=0 floors at the base.
	pz := RetryPolicy{Max: 1, Backoff: time.Millisecond, Rand: func() float64 { return 0 }}
	if got := pz.next(10 * time.Millisecond); got != time.Millisecond {
		t.Fatalf("rand=0 backoff %v, want base", got)
	}
}

func TestRetryLandsOnDifferentLaneAfterQuarantine(t *testing.T) {
	im := echoImage(t)
	lanes := map[int][]int{} // shard -> lanes that ran it
	var shard0Lanes []int
	res, err := Run(context.Background(), im, Slice([][]byte{[]byte("q")}), Config{
		Lanes:  2,
		Inject: &fault.Injector{Seed: 5, Once: true, Rates: map[fault.Kind]float64{fault.TrapPanic: 1}},
		Retry:  RetryPolicy{Max: 1, Backoff: 50 * time.Microsecond},
		Hook: func(e Event) {
			lanes[e.Shard] = append(lanes[e.Shard], e.Lane)
			if e.Shard == 0 {
				shard0Lanes = append(shard0Lanes, e.Lane)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LanesQuarantined != 1 {
		t.Fatalf("LanesQuarantined = %d, want 1", res.LanesQuarantined)
	}
	if len(shard0Lanes) != 2 {
		t.Fatalf("shard 0 ran %d times, want 2", len(shard0Lanes))
	}
	// Whatever worker picks the retry up, the faulted lane object is gone:
	// the panic quarantined it, so even a same-index pickup is a fresh lane.
	if string(res.Outputs[0]) != "q" {
		t.Fatalf("retried shard output %q", res.Outputs[0])
	}
}

// TestFailFastDrainsInflightLanes pins the drain contract: when one shard
// fails under FailFast, Run interrupts the other in-flight lanes and does
// not return until they have exited — no lane keeps running after Exec
// returns.
func TestFailFastDrainsInflightLanes(t *testing.T) {
	im := echoImage(t)
	big := make([]byte, 1<<20) // ~1M dispatches: far beyond one interrupt stride
	shards := [][]byte{big, []byte("b")}
	inflight := make(chan struct{})
	done := make(chan struct{})
	var order []int
	cfg := Config{
		Lanes: 2,
		Setup: func(l *machine.Lane, shard int) error {
			if shard == 0 {
				close(inflight) // the big shard is on a lane now
			}
			if shard == 1 {
				<-inflight // fail only once the big shard is running
				return errors.New("deliberate failure")
			}
			return nil
		},
		Hook: func(e Event) { order = append(order, e.Shard) },
	}
	go func() {
		defer close(done)
		_, err := Run(context.Background(), im, Slice(shards), cfg)
		if err == nil {
			t.Error("want the deliberate failure")
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fail-fast did not drain the in-flight lane (interrupt not delivered)")
	}
}

// TestRunReturnsAfterCancelWithSlowShard pins prompt cancellation drain:
// shards of ~2^20 dispatches each from an endless source are interrupted
// mid-flight, so Run returns promptly instead of draining 2^33-cycle work.
func TestRunReturnsAfterCancelWithSlowShard(t *testing.T) {
	im := echoImage(t)
	big := make([]byte, 1<<20)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	cfg := Config{
		Lanes: 1,
		Setup: func(l *machine.Lane, shard int) error {
			once.Do(func() { close(started) })
			return nil
		},
	}
	// Endless source: cancellation is the only way out.
	src := sourceFunc(func() ([]byte, error) { return big, nil })
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, im, src, cfg)
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancel did not interrupt the in-flight shard")
	}
}

func TestFaultRecordsFlowThroughEvents(t *testing.T) {
	im := strictImage(t)
	var traps []*fault.Trap
	res, err := Run(context.Background(), im, Slice([][]byte{[]byte("ab"), []byte("aa")}), Config{
		Lanes:  1,
		Policy: CollectErrors,
		Hook: func(e Event) {
			if e.Trap != nil {
				traps = append(traps, e.Trap)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(traps) != 1 || traps[0].Kind != fault.TrapBadSignature {
		t.Fatalf("hook saw traps %v, want one TrapBadSignature", traps)
	}
	if len(res.Faults) != 1 || res.Faults[0].Shard != 0 {
		t.Fatalf("result faults %+v", res.Faults)
	}
}

// FuzzRecords pins the record chunker invariants under arbitrary input,
// chunk size and separator: no bytes lost or duplicated, and every
// non-final shard ends on the separator when one exists in range.
func FuzzRecords(f *testing.F) {
	f.Add([]byte("a,b,c\nd,e,f\n"), 8, byte('\n'))
	f.Add([]byte(""), 1, byte('\n'))
	f.Add([]byte("no separators at all"), 4, byte(';'))
	f.Add([]byte("\n\n\n"), 2, byte('\n'))
	f.Fuzz(func(t *testing.T, data []byte, chunk int, sep byte) {
		if chunk < 1 || chunk > 1<<16 || len(data) > 1<<16 {
			t.Skip()
		}
		src := Records(bytes.NewReader(data), chunk, sep)
		var joined []byte
		var shards int
		for {
			s, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("chunker errored on clean input: %v", err)
			}
			if len(s) == 0 {
				t.Fatal("chunker yielded an empty shard")
			}
			joined = append(joined, s...)
			shards++
			if shards > len(data)+2 {
				t.Fatal("chunker yields more shards than bytes")
			}
		}
		if !bytes.Equal(joined, data) {
			t.Fatalf("chunker lost or duplicated bytes: %d in, %d out", len(data), len(joined))
		}
	})
}
