package sched

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"testing/iotest"
	"time"

	"udp/internal/core"
	"udp/internal/effclip"
	"udp/internal/machine"
)

// echoImage compiles a one-state program that copies every symbol through.
func echoImage(t *testing.T) *effclip.Image {
	t.Helper()
	p := core.NewProgram("echo", 8)
	s := p.AddState("s", core.ModeStream)
	s.Majority(s, core.AOut8(core.RSym))
	im, err := effclip.Layout(p, effclip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// countImage compiles a stateful program: for every symbol it increments a
// counter held in lane scratch memory and emits the running count — so any
// memory leaking across a lane reuse shows up in the output.
func countImage(t *testing.T) *effclip.Image {
	t.Helper()
	const ctr = 4096
	p := core.NewProgram("count", 8)
	p.DataBase = ctr
	p.DataBytes = 16
	s := p.AddState("s", core.ModeStream)
	s.Majority(s,
		core.ALd8(core.R2, core.R0, ctr),
		core.AAddi(core.R2, core.R2, 1),
		core.ASt8(core.R0, core.R2, ctr),
		core.AOut8(core.R2),
	)
	im, err := effclip.Layout(p, effclip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// strictImage compiles a program that only accepts 'a' symbols, so any other
// byte raises a dispatch error — the per-shard failure injector.
func strictImage(t *testing.T) *effclip.Image {
	t.Helper()
	p := core.NewProgram("strict", 8)
	s := p.AddState("s", core.ModeStream)
	s.On('a', s, core.AOut8(core.RSym))
	im, err := effclip.Layout(p, effclip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestStreamsManyMoreShardsThanLanes(t *testing.T) {
	im := echoImage(t)
	limit := machine.MaxLanes(im)
	if limit < 2 {
		t.Fatalf("echo image should fit many lanes, got %d", limit)
	}
	// 8×MaxLanes records of 41 bytes with a 32-byte chunk target: the
	// chunker cuts exactly one record per shard, so the run streams
	// 8×MaxLanes shards over a MaxLanes-sized pool.
	rec := strings.Repeat("x", 40) + "\n"
	data := []byte(strings.Repeat(rec, 8*limit))

	res, err := Run(context.Background(), im, Records(bytes.NewReader(data), 32, '\n'), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards < 4*limit {
		t.Fatalf("want >= %d shards streamed over %d lanes, got %d", 4*limit, limit, res.Shards)
	}
	if res.RunResult.Lanes != limit {
		t.Fatalf("pool size %d, want MaxLanes %d", res.RunResult.Lanes, limit)
	}
	if got := res.Output(); !bytes.Equal(got, data) {
		t.Fatalf("reassembled output differs from input: %d vs %d bytes", len(got), len(data))
	}
	if res.InputBytes != len(data) {
		t.Fatalf("InputBytes %d, want %d", res.InputBytes, len(data))
	}
	if res.Cycles == 0 || res.Rate() <= 0 {
		t.Fatal("makespan cycles and rate must be positive")
	}
	if res.QueueHighWater > 2*limit {
		t.Fatalf("queue high water %d exceeds default depth %d", res.QueueHighWater, 2*limit)
	}
}

func TestLaneReuseLeaksNoState(t *testing.T) {
	im := countImage(t)
	shard := []byte("aaaa")
	shards := make([][]byte, 64)
	for i := range shards {
		shards[i] = shard
	}
	// A 2-lane pool forces each lane to run ~32 shards back to back.
	res, err := Run(context.Background(), im, Slice(shards), Config{Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 4} // running count restarts at 1 every shard
	for i, out := range res.Outputs {
		if !bytes.Equal(out, want) {
			t.Fatalf("shard %d output %v, want %v (state leaked across lane reuse)", i, out, want)
		}
	}
	if res.Shards != 64 || len(res.Outputs) != 64 {
		t.Fatalf("shards %d outputs %d, want 64", res.Shards, len(res.Outputs))
	}
}

func TestContextCancellationStopsAtShardBoundary(t *testing.T) {
	im := echoImage(t)
	ctx, cancel := context.WithCancel(context.Background())
	const lanes = 2
	done := 0
	cfg := Config{
		Lanes: lanes,
		Hook: func(e Event) {
			done++
			if done == 3 {
				cancel()
			}
		},
	}
	// An endless source: cancellation is the only way the run ends.
	src := sourceFunc(func() ([]byte, error) { return []byte("abcdefgh"), nil })
	_, err := Run(ctx, im, src, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers observe the cancel at a shard boundary: beyond the three
	// hooked shards, only shards already dequeued or in flight may finish.
	if done > 3+2*lanes {
		t.Fatalf("%d shards completed after cancel, want <= %d", done, 3+2*lanes)
	}
}

type sourceFunc func() ([]byte, error)

func (f sourceFunc) Next() ([]byte, error) { return f() }

func TestFailFastStopsTheRun(t *testing.T) {
	im := strictImage(t)
	shards := [][]byte{[]byte("aaa"), []byte("aba"), []byte("aaa")}
	_, err := Run(context.Background(), im, Slice(shards), Config{Lanes: 1})
	var se ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want a ShardError", err)
	}
	if se.Shard != 1 {
		t.Fatalf("failed shard %d, want 1", se.Shard)
	}
}

func TestCollectErrorsKeepsGoing(t *testing.T) {
	im := strictImage(t)
	shards := [][]byte{[]byte("aaa"), []byte("aba"), []byte("aa"), []byte("b")}
	res, err := Run(context.Background(), im, Slice(shards), Config{Lanes: 1, Policy: CollectErrors})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 2 {
		t.Fatalf("%d shard errors, want 2: %v", len(res.Errors), res.Errors)
	}
	if res.Errors[0].Shard != 1 || res.Errors[1].Shard != 3 {
		t.Fatalf("failed shards %d,%d, want 1,3", res.Errors[0].Shard, res.Errors[1].Shard)
	}
	if string(res.Outputs[0]) != "aaa" || string(res.Outputs[2]) != "aa" {
		t.Fatal("successful shard outputs missing")
	}
	if res.Outputs[1] != nil || res.Outputs[3] != nil {
		t.Fatal("failed shards must leave nil output slots")
	}
}

func TestLaneSetupRunsPerShard(t *testing.T) {
	// The echo program ignores registers, so use setup to stage a marker
	// in scratch memory... simplest observable: count setup invocations
	// and check the shard indices seen.
	im := echoImage(t)
	shards := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	seen := make([]bool, len(shards))
	var muSeen = make(chan struct{}, 1)
	muSeen <- struct{}{}
	setup := func(l *machine.Lane, shard int) error {
		<-muSeen
		seen[shard] = true
		muSeen <- struct{}{}
		return nil
	}
	if _, err := Run(context.Background(), im, Slice(shards), Config{Setup: setup}); err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("setup never ran for shard %d", i)
		}
	}
}

func TestSetupErrorHonorsPolicy(t *testing.T) {
	im := echoImage(t)
	shards := [][]byte{[]byte("a"), []byte("b")}
	boom := fmt.Errorf("boom")
	setup := func(l *machine.Lane, shard int) error {
		if shard == 1 {
			return boom
		}
		return nil
	}
	_, err := Run(context.Background(), im, Slice(shards), Config{Lanes: 1, Setup: setup})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestHookReportsThroughput(t *testing.T) {
	im := echoImage(t)
	var events []Event
	cfg := Config{Hook: func(e Event) { events = append(events, e) }}
	shards := [][]byte{[]byte("hello"), []byte("world")}
	if _, err := Run(context.Background(), im, Slice(shards), cfg); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	for _, e := range events {
		if e.Bytes != 5 || e.Cycles == 0 || e.Rate() <= 0 {
			t.Fatalf("bad event %+v", e)
		}
		if e.Lane < 0 || e.Err != nil {
			t.Fatalf("bad event %+v", e)
		}
	}
}

func TestRecordsChunkerAlignsOnSeparators(t *testing.T) {
	var b bytes.Buffer
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "row-%d,%d\n", i, i*i)
	}
	data := append([]byte(nil), b.Bytes()...)
	src := Records(bytes.NewReader(data), 64, '\n')
	var shards [][]byte
	for {
		s, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, s)
	}
	if len(shards) < 4 {
		t.Fatalf("only %d shards from %d bytes at 64 B chunks", len(shards), len(data))
	}
	var joined []byte
	for i, s := range shards {
		if i < len(shards)-1 {
			if len(s) < 64 {
				t.Fatalf("shard %d is %d B, want >= chunk size", i, len(s))
			}
			if s[len(s)-1] != '\n' {
				t.Fatalf("shard %d does not end on a record boundary", i)
			}
		}
		joined = append(joined, s...)
	}
	if !bytes.Equal(joined, data) {
		t.Fatal("chunker lost or duplicated bytes")
	}
}

func TestRecordsChunkerGrowsForOversizedRecords(t *testing.T) {
	// One 1000-byte record with a 64-byte chunk target must arrive whole.
	rec := append(bytes.Repeat([]byte("x"), 1000), '\n')
	data := append(append([]byte(nil), rec...), []byte("tail\n")...)
	src := Records(bytes.NewReader(data), 64, '\n')
	first, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, rec) {
		t.Fatalf("oversized record split: got %d B, want %d B", len(first), len(rec))
	}
}

func TestChunksFixedSize(t *testing.T) {
	data := bytes.Repeat([]byte("z"), 130)
	src := Chunks(bytes.NewReader(data), 50)
	var sizes []int
	for {
		s, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(s))
	}
	want := []int{50, 50, 30}
	if len(sizes) != len(want) {
		t.Fatalf("sizes %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes %v, want %v", sizes, want)
		}
	}
}

func TestEmptySourceYieldsEmptyResult(t *testing.T) {
	im := echoImage(t)
	res, err := Run(context.Background(), im, Slice(nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 0 || res.InputBytes != 0 || len(res.Output()) != 0 {
		t.Fatalf("empty source produced %+v", res)
	}
}

func TestSourceErrorAbortsRun(t *testing.T) {
	im := echoImage(t)
	bad := fmt.Errorf("disk on fire")
	n := 0
	src := sourceFunc(func() ([]byte, error) {
		n++
		if n > 3 {
			return nil, bad
		}
		return []byte("ok"), nil
	})
	_, err := Run(context.Background(), im, src, cfgNoHook())
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want wrapped source error", err)
	}
}

func cfgNoHook() Config { return Config{} }

func TestNilImageAndNilSourceAreTypedErrors(t *testing.T) {
	im := echoImage(t)
	if _, err := Run(context.Background(), nil, Slice(nil), Config{}); !errors.Is(err, ErrNilImage) {
		t.Fatalf("nil image err = %v, want ErrNilImage", err)
	}
	if _, err := Run(context.Background(), im, nil, Config{}); !errors.Is(err, ErrNilSource) {
		t.Fatalf("nil source err = %v, want ErrNilSource", err)
	}
}

func TestRecordsEmptyInput(t *testing.T) {
	src := Records(bytes.NewReader(nil), 8, '\n')
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("empty input: err = %v, want io.EOF", err)
	}
	// EOF must be sticky.
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("second Next: err = %v, want io.EOF", err)
	}
}

func TestRecordsInputWithoutTrailingSeparator(t *testing.T) {
	src := Records(strings.NewReader("abc\ndef"), 4, '\n')
	first, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != "abc\n" {
		t.Fatalf("first shard %q, want %q", first, "abc\n")
	}
	second, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(second) != "def" {
		t.Fatalf("trailing bytes without separator must form the last shard, got %q", second)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

// TestRecordsSingleRecordSpanningManyChunks pins the growth path: one record
// many times larger than the chunk target, delivered by a reader that
// returns one byte at a time, must arrive as a single shard.
func TestRecordsSingleRecordSpanningManyChunks(t *testing.T) {
	rec := append(bytes.Repeat([]byte("y"), 10*64+3), '\n')
	data := append(append([]byte(nil), rec...), []byte("z\n")...)
	src := Records(iotest.OneByteReader(bytes.NewReader(data)), 64, '\n')
	first, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, rec) {
		t.Fatalf("oversized record: got %d bytes, want %d", len(first), len(rec))
	}
	second, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(second) != "z\n" {
		t.Fatalf("following record %q, want %q", second, "z\n")
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

// countingSource wraps a Source and records how far the producer ran ahead
// of shard completions — the backpressure invariant.
type countingSource struct {
	inner     Source
	mu        sync.Mutex
	pulled    int
	completed int
	maxAhead  int
}

func (c *countingSource) Next() ([]byte, error) {
	c.mu.Lock()
	c.pulled++
	if ahead := c.pulled - c.completed; ahead > c.maxAhead {
		c.maxAhead = ahead
	}
	c.mu.Unlock()
	return c.inner.Next()
}

func (c *countingSource) complete() {
	c.mu.Lock()
	c.completed++
	c.mu.Unlock()
}

// TestQueueBackpressureWithSlowConsumer pins that a slow lane pool stalls
// the producer at the bounded queue instead of buffering the whole input:
// the source is never more than queue depth + pool size + 1 shards ahead of
// the completions.
func TestQueueBackpressureWithSlowConsumer(t *testing.T) {
	im := echoImage(t)
	const shards, lanes, depth = 48, 1, 2
	in := make([][]byte, shards)
	for i := range in {
		in[i] = []byte("abcdefgh")
	}
	src := &countingSource{inner: Slice(in)}
	cfg := Config{
		Lanes:      lanes,
		QueueDepth: depth,
		Setup: func(l *machine.Lane, shard int) error {
			time.Sleep(500 * time.Microsecond) // the slow consumer
			return nil
		},
		Hook: func(e Event) { src.complete() },
	}
	res, err := Run(context.Background(), im, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != shards {
		t.Fatalf("ran %d shards, want %d", res.Shards, shards)
	}
	if res.QueueHighWater > depth {
		t.Fatalf("queue high water %d exceeds depth %d", res.QueueHighWater, depth)
	}
	// depth queued + lanes in flight + 1 blocked in the send.
	if limit := depth + lanes + 1; src.maxAhead > limit {
		t.Fatalf("producer ran %d shards ahead of completions, want <= %d (no backpressure)",
			src.maxAhead, limit)
	}
}

func TestSinkStreamsOutputsInOrder(t *testing.T) {
	im := echoImage(t)
	rec := strings.Repeat("r", 40) + "\n"
	data := []byte(strings.Repeat(rec, 64))
	var (
		got  []byte
		last = -1
	)
	cfg := Config{
		Sink: func(shard int, out []byte) error {
			if shard <= last {
				t.Errorf("sink saw shard %d after %d", shard, last)
			}
			last = shard
			got = append(got, out...)
			return nil
		},
	}
	res, err := Run(context.Background(), im, Records(bytes.NewReader(data), 32, '\n'), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("sink stream differs from input: %d vs %d bytes", len(got), len(data))
	}
	// Outputs are not retained when a sink consumes them.
	if out := res.Output(); len(out) != 0 {
		t.Fatalf("Result retained %d output bytes despite sink", len(out))
	}
	if res.Shards < 4 {
		t.Fatalf("want a multi-shard run, got %d", res.Shards)
	}
}

func TestSinkErrorFailsRun(t *testing.T) {
	im := echoImage(t)
	boom := fmt.Errorf("client went away")
	cfg := Config{
		Sink: func(shard int, out []byte) error {
			if shard == 1 {
				return boom
			}
			return nil
		},
	}
	shards := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	_, err := Run(context.Background(), im, Slice(shards), cfg)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped sink error", err)
	}
}

func TestSinkSkipsFailedShardsUnderCollectErrors(t *testing.T) {
	im := strictImage(t)
	shards := [][]byte{[]byte("aaa"), []byte("ab"), []byte("aa")}
	var got []byte
	cfg := Config{
		Lanes:  1,
		Policy: CollectErrors,
		Sink:   func(shard int, out []byte) error { got = append(got, out...); return nil },
	}
	res, err := Run(context.Background(), im, Slice(shards), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaaaa" {
		t.Fatalf("sink got %q, want the two successful shards %q", got, "aaaaa")
	}
	if len(res.Errors) != 1 || res.Errors[0].Shard != 1 {
		t.Fatalf("errors %v, want shard 1", res.Errors)
	}
}

// TestMatchesAndStatsAggregate pins that matches land in shard order and
// counters accumulate across the pool.
func TestMatchesAndStatsAggregate(t *testing.T) {
	p := core.NewProgram("accept-a", 8)
	s := p.AddState("s", core.ModeStream)
	s.On('a', s, core.AAccept(7))
	s.Majority(s)
	im, err := effclip.Layout(p, effclip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]byte{[]byte("xax"), []byte("aa"), []byte("xxx")}
	res, err := Run(context.Background(), im, Slice(shards), Config{Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches[0]) != 1 || len(res.Matches[1]) != 2 || len(res.Matches[2]) != 0 {
		t.Fatalf("match counts %d,%d,%d want 1,2,0",
			len(res.Matches[0]), len(res.Matches[1]), len(res.Matches[2]))
	}
	if res.Total.Dispatches == 0 || res.Total.Cycles == 0 {
		t.Fatal("aggregate stats empty")
	}
}
