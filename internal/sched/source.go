// Shard sources for the executor: a Source yields the shards a run
// streams through the lane pool. Slice adapts pre-sharded inputs (the
// RunParallel compatibility path); Records and Chunks generalize the
// one-shot SplitRecords/SplitBytes helpers to unbounded io.Reader inputs,
// in the style of streaming chunked execution — the whole input never has
// to be resident, and a shard is cut so no record straddles two lanes.
package sched

import (
	"bytes"
	"io"
)

// DefaultChunkBytes is the shard size Records and Chunks aim for when the
// caller passes 0. It is a compromise between per-shard dispatch overhead
// and keeping many lanes busy on moderate inputs.
const DefaultChunkBytes = 64 << 10

// Source yields successive input shards. Next returns io.EOF after the last
// shard; any other error aborts the run. Implementations need not be
// safe for concurrent use: the executor calls Next from one goroutine.
type Source interface {
	Next() ([]byte, error)
}

// Recycler is an optional Source extension: when a source implements it, the
// executor hands each shard buffer back through Recycle once the shard is
// finally resolved (delivered, failed with no retry left, or dropped on
// cancellation), so a streaming source can reuse the array for a later shard
// instead of allocating one per chunk. Unlike Next, Recycle must be safe for
// concurrent use — pool workers return buffers as they finish. Slice
// deliberately does not implement it: those shards belong to the caller.
type Recycler interface {
	Recycle(buf []byte)
}

// Slice adapts an in-memory shard list to a Source.
func Slice(shards [][]byte) Source { return &sliceSource{shards: shards} }

type sliceSource struct {
	shards [][]byte
	i      int
}

func (s *sliceSource) Next() ([]byte, error) {
	if s.i >= len(s.shards) {
		return nil, io.EOF
	}
	sh := s.shards[s.i]
	s.i++
	return sh, nil
}

// bufPool hands the streaming sources' shard buffers to the shared slab
// manager, so chunker buffers and sink output windows recycle through the
// same per-class rings.
type bufPool struct{}

// get returns a zero-length buffer with at least min capacity.
func (bufPool) get(min int) []byte { return mem.Get(min) }

func (bufPool) put(buf []byte) { mem.Put(buf) }

// Chunks streams r as fixed-size shards of chunkBytes (DefaultChunkBytes
// when 0). The final shard may be shorter. The returned source implements
// Recycler, so under the executor the steady state reuses a few pool-sized
// buffers instead of allocating one per chunk.
func Chunks(r io.Reader, chunkBytes int) Source {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	return &chunkSource{r: r, chunk: chunkBytes}
}

type chunkSource struct {
	r     io.Reader
	chunk int
	done  bool
	pool  bufPool
}

// Recycle accepts a finished shard buffer back into the pool.
func (c *chunkSource) Recycle(buf []byte) { c.pool.put(buf) }

func (c *chunkSource) Next() ([]byte, error) {
	if c.done {
		return nil, io.EOF
	}
	buf := c.pool.get(c.chunk)[:c.chunk]
	n, err := io.ReadFull(c.r, buf)
	if err == io.EOF {
		c.done = true
		c.pool.put(buf)
		return nil, io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		c.done = true
		return buf[:n], nil
	}
	if err != nil {
		c.pool.put(buf)
		return nil, err
	}
	return buf, nil
}

// Records streams r as record-aligned shards: each shard is at least
// chunkBytes long (DefaultChunkBytes when 0) and is cut just after the next
// separator byte, so no record straddles two shards — the streaming
// generalization of SplitRecords. A record longer than chunkBytes extends
// its shard rather than being split. Trailing bytes without a final
// separator form the last shard. The returned source implements Recycler
// (see Chunks).
func Records(r io.Reader, chunkBytes int, sep byte) Source {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	return &recordSource{r: r, chunk: chunkBytes, sep: sep}
}

type recordSource struct {
	r       io.Reader
	chunk   int
	sep     byte
	rest    []byte // carry-over past the last emitted separator
	scratch []byte // reused read buffer (contents copied into rest)
	done    bool
	pool    bufPool
}

// Recycle accepts a finished shard buffer back into the pool.
func (s *recordSource) Recycle(buf []byte) { s.pool.put(buf) }

func (s *recordSource) Next() ([]byte, error) {
	for {
		// Emit if the carried bytes already hold a separator at or past
		// the chunk target.
		if len(s.rest) >= s.chunk {
			if i := bytes.IndexByte(s.rest[s.chunk-1:], s.sep); i >= 0 {
				cut := s.chunk + i
				shard := s.rest[:cut]
				// The shard owns its array until recycled, so the tail
				// moves to a (pooled) fresh buffer.
				s.rest = append(s.pool.get(s.chunk), s.rest[cut:]...)
				return shard, nil
			}
		}
		if s.done {
			if len(s.rest) == 0 {
				return nil, io.EOF
			}
			shard := s.rest
			s.rest = nil
			return shard, nil
		}
		if s.scratch == nil {
			s.scratch = make([]byte, s.chunk)
		}
		n, err := s.r.Read(s.scratch)
		if s.rest == nil {
			s.rest = s.pool.get(s.chunk)
		}
		s.rest = append(s.rest, s.scratch[:n]...)
		if err == io.EOF {
			s.done = true
			continue
		}
		if err != nil {
			return nil, err
		}
	}
}
