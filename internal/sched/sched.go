// Package sched is the streaming lane-pool executor: it time-multiplexes an
// unbounded stream of input shards over a fixed pool of reusable UDP lanes,
// in the spirit of the paper's ETL serving scenario (Section 5.3) — the
// machine keeps at most MaxLanes(img) lanes resident and streams work
// through them, instead of requiring one lane per shard and the whole input
// in memory the way machine.RunParallel does.
//
// The executor pulls shards from a Source through a bounded queue (the
// backpressure point: a slow lane pool stalls the producer instead of
// buffering the world), resets and reuses each lane between shards
// (machine.Lane.Reset restores the load-time memory image), honors
// context.Context cancellation at shard granularity, supports fail-fast and
// collect-and-continue error policies, and reports per-shard events to an
// observability hook so callers can surface live throughput.
package sched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"udp/internal/effclip"
	"udp/internal/machine"
)

// Typed argument errors, so callers can distinguish a misuse from an
// execution failure with errors.Is instead of recovering a panic raised deep
// in the machine.
var (
	// ErrNilImage is returned when a run is started with a nil image.
	ErrNilImage = errors.New("sched: nil image")
	// ErrNilSource is returned when a run is started with a nil source.
	ErrNilSource = errors.New("sched: nil shard source")
)

// ErrorPolicy selects how per-shard execution errors end (or don't end) a
// run.
type ErrorPolicy int

const (
	// FailFast cancels the run on the first shard error; Run returns that
	// error.
	FailFast ErrorPolicy = iota
	// CollectErrors records each failing shard in Result.Errors (its
	// output slot stays nil) and keeps going.
	CollectErrors
)

// ShardError ties an execution error to the shard it occurred on.
type ShardError struct {
	// Shard is the shard index in stream order.
	Shard int
	// Err is the underlying lane or setup error.
	Err error
}

func (e ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e ShardError) Unwrap() error { return e.Err }

// Event is one observability record, emitted after a shard finishes
// (successfully or not). Events are delivered serially — the hook needs no
// locking — but not necessarily in shard order.
type Event struct {
	// Shard is the shard index in stream order.
	Shard int
	// Lane is the pool lane (0..Lanes-1) that ran the shard.
	Lane int
	// Bytes is the shard's input size.
	Bytes int
	// Cycles is the lane cycle count for this shard.
	Cycles uint64
	// Wall is the host wall-clock time the shard took (Reset through Run).
	Wall time.Duration
	// QueueDepth is the number of shards waiting in the queue at the
	// moment this shard was dequeued (backpressure signal).
	QueueDepth int
	// Busy is the number of pool lanes executing a shard at the moment
	// this shard was dequeued, this one included (utilization signal).
	Busy int
	// Err is the shard's error, nil on success.
	Err error
}

// Rate is the shard's simulated throughput in MB/s at the ASIC clock.
func (e Event) Rate() float64 { return machine.RateMBps(e.Bytes, e.Cycles) }

// Config tunes a run. The zero value is usable: MaxLanes(img) lanes, a
// 2×lanes queue, fail-fast errors, no setup, no hook.
type Config struct {
	// Lanes caps the pool size; 0 or anything above MaxLanes(img) means
	// MaxLanes(img).
	Lanes int
	// QueueDepth bounds the shard queue (backpressure); 0 means 2×lanes.
	QueueDepth int
	// Setup, when non-nil, customizes a lane before each shard runs
	// (stage memory, preset registers). It runs after Reset and SetInput,
	// with the shard's stream-order index.
	Setup machine.LaneSetup
	// Policy is the error policy (default FailFast).
	Policy ErrorPolicy
	// Hook, when non-nil, receives one Event per finished shard.
	Hook func(Event)
	// Sink, when non-nil, receives each successful shard's output in
	// shard order as soon as it and all its predecessors have finished.
	// Outputs handed to the sink are NOT accumulated in Result.Outputs,
	// so a run over an unbounded input holds only the reorder window in
	// memory. Deliveries are serial (no locking needed in the sink) and a
	// slow sink backpressures the whole pool, which in turn stalls the
	// producer through the bounded queue — backpressure end to end. A
	// sink error fails the run regardless of Policy; under CollectErrors
	// a failed shard is skipped and the cursor advances past it.
	Sink func(shard int, out []byte) error
}

// Result aggregates a streaming run. It embeds machine.RunResult so
// existing consumers (Rate, LaneLogicJoules, Outputs, Matches) carry over;
// Cycles is the pool makespan — the largest per-lane sum of shard cycles —
// so Rate() reflects the time-multiplexed schedule.
type Result struct {
	machine.RunResult
	// Shards is the number of shards pulled from the source.
	Shards int
	// Errors holds per-shard failures under CollectErrors (empty under
	// FailFast, which returns the error instead).
	Errors []ShardError
	// QueueHighWater is the deepest the shard queue got (≤ QueueDepth).
	QueueHighWater int
	// Wall is the host wall-clock duration of the whole run.
	Wall time.Duration
}

// Output concatenates the per-shard outputs in shard order.
func (r *Result) Output() []byte {
	var n int
	for _, o := range r.Outputs {
		n += len(o)
	}
	out := make([]byte, 0, n)
	for _, o := range r.Outputs {
		out = append(out, o...)
	}
	return out
}

type workItem struct {
	idx  int
	data []byte
}

// Run streams shards from src through a pool of reusable lanes executing
// img, and aggregates outputs, matches and counters in shard order. It
// returns when the source is drained, ctx is cancelled (the context error
// is returned; cancellation is observed at shard boundaries), or — under
// FailFast — a shard fails.
func Run(ctx context.Context, img *effclip.Image, src Source, cfg Config) (*Result, error) {
	if img == nil {
		return nil, ErrNilImage
	}
	if src == nil {
		return nil, ErrNilSource
	}
	limit := machine.MaxLanes(img)
	if limit == 0 {
		return nil, fmt.Errorf("sched: image %q does not fit local memory", img.Name)
	}
	lanes := cfg.Lanes
	if lanes <= 0 || lanes > limit {
		lanes = limit
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 2 * lanes
	}

	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	res := &Result{}
	res.RunResult.Lanes = lanes
	res.RunResult.BanksPerLane = img.Banks()

	queue := make(chan workItem, depth)
	var (
		mu         sync.Mutex // guards everything below, and serializes Hook and Sink
		outputs    [][]byte
		matches    [][]machine.Match
		shardBytes []int
		total      machine.Stats
		shardErrs  []ShardError
		runErr     error // first fatal error (FailFast shard error or source error)
		highWater  int
	)
	laneCycles := make([]uint64, lanes)
	var busy atomic.Int32

	// Reorder window for Config.Sink: finished outputs park here (nil for a
	// shard skipped under CollectErrors) until every predecessor has been
	// delivered, so the sink sees outputs in shard order.
	var (
		pending  map[int][]byte
		sinkNext int
	)
	if cfg.Sink != nil {
		pending = make(map[int][]byte)
	}

	setSlot := func(idx int, out []byte, m []machine.Match, bytes int) {
		for len(outputs) <= idx {
			outputs = append(outputs, nil)
			matches = append(matches, nil)
			shardBytes = append(shardBytes, 0)
		}
		outputs[idx] = out
		matches[idx] = m
		shardBytes[idx] = bytes
	}

	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		cancel()
	}

	// drainSink runs with mu held; it delivers every ready output in shard
	// order and parks the rest in the reorder window.
	drainSink := func() {
		for {
			out, ok := pending[sinkNext]
			if !ok {
				return
			}
			delete(pending, sinkNext)
			sinkNext++
			if out == nil { // failed shard under CollectErrors
				continue
			}
			if err := cfg.Sink(sinkNext-1, out); err != nil {
				fail(fmt.Errorf("sched: sink: %w", err))
				return
			}
		}
	}

	// Producer: pull shards from the source into the bounded queue.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(queue)
		for idx := 0; ; idx++ {
			shard, err := src.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				mu.Lock()
				fail(fmt.Errorf("sched: source: %w", err))
				mu.Unlock()
				return
			}
			select {
			case queue <- workItem{idx: idx, data: shard}:
				mu.Lock()
				res.Shards = idx + 1
				if d := len(queue); d > highWater {
					highWater = d
				}
				mu.Unlock()
			case <-ctx.Done():
				return
			}
		}
	}()

	// Lane pool: each worker owns one lane for the whole run and resets it
	// between shards.
	for w := 0; w < lanes; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lane, err := machine.NewLane(img, 0)
			if err != nil {
				mu.Lock()
				fail(err)
				mu.Unlock()
				return
			}
			for {
				select {
				case <-ctx.Done():
					return
				case it, ok := <-queue:
					if !ok {
						return
					}
					// A cancelled run drops still-queued shards so the
					// cancel is observed within one shard boundary.
					if ctx.Err() != nil {
						return
					}
					qd := len(queue)
					nb := int(busy.Add(1))
					t0 := time.Now()
					out, m, st, err := runShard(lane, it, cfg.Setup)
					busy.Add(-1)
					ev := Event{
						Shard: it.idx, Lane: w, Bytes: len(it.data),
						Cycles: st.Cycles, Wall: time.Since(t0),
						QueueDepth: qd, Busy: nb, Err: err,
					}
					mu.Lock()
					if err != nil {
						if cfg.Policy == CollectErrors {
							shardErrs = append(shardErrs, ShardError{Shard: it.idx, Err: err})
							setSlot(it.idx, nil, nil, len(it.data))
							if cfg.Sink != nil {
								pending[it.idx] = nil
								drainSink()
							}
						} else {
							fail(ShardError{Shard: it.idx, Err: err})
						}
					} else {
						if cfg.Sink != nil {
							setSlot(it.idx, nil, m, len(it.data))
							pending[it.idx] = out
							drainSink()
						} else {
							setSlot(it.idx, out, m, len(it.data))
						}
						total.Add(st)
						laneCycles[w] += st.Cycles
					}
					if cfg.Hook != nil {
						cfg.Hook(ev)
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	if runErr != nil {
		return nil, runErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res.Outputs = outputs
	res.Matches = matches
	res.Total = total
	for _, b := range shardBytes {
		res.InputBytes += b
	}
	for _, c := range laneCycles {
		if c > res.Cycles {
			res.Cycles = c
		}
	}
	res.Errors = shardErrs
	res.QueueHighWater = highWater
	res.Wall = time.Since(start)
	return res, nil
}

// runShard executes one shard on a reused lane: reset, attach input, apply
// setup, run, and copy out the results (the lane's buffers are recycled on
// the next Reset).
func runShard(lane *machine.Lane, it workItem, setup machine.LaneSetup) ([]byte, []machine.Match, machine.Stats, error) {
	lane.Reset()
	lane.SetInput(it.data)
	if setup != nil {
		if err := setup(lane, it.idx); err != nil {
			return nil, nil, machine.Stats{}, err
		}
	}
	if err := lane.Run(0); err != nil {
		return nil, nil, lane.Stats(), err
	}
	out := append([]byte(nil), lane.Output()...)
	m := append([]machine.Match(nil), lane.Matches()...)
	return out, m, lane.Stats(), nil
}
