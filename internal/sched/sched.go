// Package sched is the streaming lane-pool executor: it time-multiplexes an
// unbounded stream of input shards over a fixed pool of reusable UDP lanes,
// in the spirit of the paper's ETL serving scenario (Section 5.3) — the
// machine keeps at most MaxLanes(img) lanes resident and streams work
// through them, instead of requiring one lane per shard and the whole input
// in memory the way machine.RunParallel does.
//
// The executor pulls shards from a Source through a bounded queue (the
// backpressure point: a slow lane pool stalls the producer instead of
// buffering the world), resets and reuses each lane between shards
// (machine.Lane.Reset restores the load-time memory image), honors
// context.Context cancellation at shard granularity, supports fail-fast and
// collect-and-continue error policies, and reports per-shard events to an
// observability hook so callers can surface live throughput.
package sched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"udp/internal/effclip"
	"udp/internal/fault"
	"udp/internal/machine"
	"udp/internal/memsys"
	"udp/internal/obs"
)

// Typed argument errors, so callers can distinguish a misuse from an
// execution failure with errors.Is instead of recovering a panic raised deep
// in the machine.
var (
	// ErrNilImage is returned when a run is started with a nil image.
	ErrNilImage = errors.New("sched: nil image")
	// ErrNilSource is returned when a run is started with a nil source.
	ErrNilSource = errors.New("sched: nil shard source")
)

// ErrorPolicy selects how per-shard execution errors end (or don't end) a
// run.
type ErrorPolicy int

const (
	// FailFast cancels the run on the first shard error; Run returns that
	// error.
	FailFast ErrorPolicy = iota
	// CollectErrors records each failing shard in Result.Errors (its
	// output slot stays nil) and keeps going.
	CollectErrors
)

// ShardError ties an execution error to the shard it occurred on.
type ShardError struct {
	// Shard is the shard index in stream order.
	Shard int
	// Err is the underlying lane or setup error.
	Err error
}

func (e ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e ShardError) Unwrap() error { return e.Err }

// Event is one observability record, emitted after a shard attempt
// finishes (successfully or not). Events are delivered serially — the hook
// needs no locking — but not necessarily in shard order. A shard that is
// retried emits one Event per attempt.
type Event struct {
	// Shard is the shard index in stream order.
	Shard int
	// Lane is the pool lane (0..Lanes-1) that ran the shard.
	Lane int
	// Bytes is the shard's input size.
	Bytes int
	// Cycles is the lane cycle count for this shard.
	Cycles uint64
	// Wall is the host wall-clock time the shard took (Reset through Run).
	Wall time.Duration
	// QueueDepth is the number of shards waiting in the queue at the
	// moment this shard was dequeued (backpressure signal).
	QueueDepth int
	// Busy is the number of pool lanes executing a shard at the moment
	// this shard was dequeued, this one included (utilization signal).
	Busy int
	// Attempt is which execution of the shard this was (0 = first).
	Attempt int
	// Engine is the execution tier the shard actually ran on (which can
	// be lower than the configured engine when the image is ineligible or
	// the program self-modifies; see machine.Lane.EngineInUse).
	Engine machine.Engine
	// Trap is the typed fault behind Err, when there is one.
	Trap *fault.Trap
	// Retried reports that this failed attempt was re-enqueued per the
	// retry policy (a later Event for the same Shard will follow).
	Retried bool
	// Err is the shard's error, nil on success.
	Err error
}

// Rate is the shard's simulated throughput in MB/s at the ASIC clock.
func (e Event) Rate() float64 { return machine.RateMBps(e.Bytes, e.Cycles) }

// FaultRecord is one shard attempt that ended in a typed trap — the
// per-shard fault log Result accumulates and the Event hook mirrors.
type FaultRecord struct {
	// Shard is the shard index in stream order.
	Shard int
	// Lane is the pool lane the faulting attempt ran on.
	Lane int
	// Attempt is which execution of the shard faulted (0 = first).
	Attempt int
	// Trap is the typed fault.
	Trap *fault.Trap
	// Retried reports the shard was re-enqueued after this fault.
	Retried bool
	// Backoff is the delay before the re-enqueue (zero when not retried).
	Backoff time.Duration
}

// CycleBudget derives a per-shard cycle cap from the shard's input size,
// so a runaway program faults in milliseconds of simulated time instead of
// grinding to machine.DefaultMaxCycles (2^33). The zero value means
// "no budget" (the machine default applies).
type CycleBudget struct {
	// PerByte is the allowed cycles per input byte. Honest kernels run at
	// one-to-a-few cycles per byte, so even 64 is a generous margin.
	PerByte uint64
	// Floor is the minimum budget regardless of shard size (covers empty
	// shards and fixed startup work such as table builds).
	Floor uint64
}

// For returns the cycle cap for a shard of the given size (0 = unbounded
// up to the machine default).
func (b CycleBudget) For(bytes int) uint64 {
	if b.PerByte == 0 && b.Floor == 0 {
		return 0
	}
	c := b.PerByte * uint64(bytes)
	if c < b.Floor {
		c = b.Floor
	}
	return c
}

// RetryPolicy re-enqueues shards that fail with a retryable trap, with
// decorrelated-jitter backoff, onto the pool (any idle lane picks the
// retry up — by the time the backoff expires it is almost never the lane
// that faulted, and a panicking lane has been quarantined and replaced
// regardless). The zero value disables retries.
type RetryPolicy struct {
	// Max is the retry attempts per shard beyond the first execution
	// (0 = no retries).
	Max int
	// Backoff is the base backoff (default 1ms when Max > 0). Successive
	// retries follow decorrelated jitter: sleep = min(cap, base +
	// rand*(3*prev - base)).
	Backoff time.Duration
	// MaxBackoff caps the backoff (default 32× Backoff).
	MaxBackoff time.Duration
	// RetryableTraps lists the trap kinds worth re-running. Nil means
	// only fault.TrapPanic (the one kind that is plausibly transient
	// without fault injection).
	RetryableTraps []fault.Kind
	// Rand overrides the jitter source (tests); nil uses math/rand.
	Rand func() float64
}

// retryable reports whether a trap of kind k is worth re-running under p.
func (p RetryPolicy) retryable(k fault.Kind) bool {
	if p.Max <= 0 {
		return false
	}
	if len(p.RetryableTraps) == 0 {
		return k == fault.TrapPanic
	}
	for _, r := range p.RetryableTraps {
		if r == k {
			return true
		}
	}
	return false
}

// next picks the decorrelated-jitter delay following prev (0 for the first
// retry).
func (p RetryPolicy) next(prev time.Duration) time.Duration {
	base := p.Backoff
	if base <= 0 {
		base = time.Millisecond
	}
	limit := p.MaxBackoff
	if limit <= 0 {
		limit = 32 * base
	}
	if prev <= 0 {
		prev = base
	}
	r := p.Rand
	if r == nil {
		r = rand.Float64
	}
	span := 3*prev - base
	if span < 0 {
		span = 0
	}
	d := base + time.Duration(r()*float64(span))
	if d > limit {
		d = limit
	}
	return d
}

// Config tunes a run. The zero value is usable: MaxLanes(img) lanes, a
// 2×lanes queue, fail-fast errors, no setup, no hook.
type Config struct {
	// Lanes caps the pool size; 0 or anything above MaxLanes(img) means
	// MaxLanes(img).
	Lanes int
	// QueueDepth bounds the shard queue (backpressure); 0 means 2×lanes.
	QueueDepth int
	// Engine selects the lane execution tier for the pool
	// (machine.EngineAuto, the zero value, picks the fastest eligible
	// tier; see machine.Engine). Every pool lane runs the same engine.
	Engine machine.Engine
	// Setup, when non-nil, customizes a lane before each shard runs
	// (stage memory, preset registers). It runs after Reset and SetInput,
	// with the shard's stream-order index.
	Setup machine.LaneSetup
	// Policy is the error policy (default FailFast).
	Policy ErrorPolicy
	// Hook, when non-nil, receives one Event per finished shard.
	Hook func(Event)
	// Budget caps each shard's lane cycles as a function of its input
	// size; the zero value leaves the machine default (2^33) in place.
	Budget CycleBudget
	// Retry re-enqueues shards failing with retryable traps (see
	// RetryPolicy); the zero value disables retries. Retries take
	// precedence over Policy: only a shard whose retries are exhausted
	// (or whose trap is not retryable) reaches FailFast/CollectErrors
	// handling.
	Retry RetryPolicy
	// Inject, when non-nil, is the deterministic fault injector rolled
	// once per shard attempt (chaos testing; see fault.Injector).
	Inject *fault.Injector
	// Profile, when non-nil, aggregates the automaton profiler across the
	// run: each worker attaches a per-lane histogram to sampled shards and
	// merges it into Profile when the worker exits. The machine's
	// zero-allocation dispatch path is untouched when Profile is nil.
	Profile *obs.Profile
	// ProfileSample profiles one shard in every ProfileSample (by stream
	// index); values <= 1 profile every shard. Ignored when Profile is nil.
	ProfileSample int
	// Sink, when non-nil, receives each successful shard's output in
	// shard order as soon as it and all its predecessors have finished.
	// Outputs handed to the sink are NOT accumulated in Result.Outputs,
	// so a run over an unbounded input holds only the reorder window in
	// memory. Deliveries are serial (no locking needed in the sink) and a
	// slow sink backpressures the whole pool, which in turn stalls the
	// producer through the bounded queue — backpressure end to end. A
	// sink error fails the run regardless of Policy; under CollectErrors
	// a failed shard is skipped and the cursor advances past it.
	//
	// The out slice is only valid for the duration of the call: the
	// executor recycles the buffer for a later shard's output. A sink
	// that needs the bytes past its return must copy them.
	Sink func(shard int, out []byte) error
}

// Result aggregates a streaming run. It embeds machine.RunResult so
// existing consumers (Rate, LaneLogicJoules, Outputs, Matches) carry over;
// Cycles is the pool makespan — the largest per-lane sum of shard cycles —
// so Rate() reflects the time-multiplexed schedule.
type Result struct {
	machine.RunResult
	// Shards is the number of shards pulled from the source.
	Shards int
	// Errors holds per-shard failures under CollectErrors (empty under
	// FailFast, which returns the error instead).
	Errors []ShardError
	// Faults logs every shard attempt that ended in a typed trap,
	// including attempts that were subsequently retried to success.
	Faults []FaultRecord
	// Retries counts shard re-enqueues performed by the retry policy.
	Retries int
	// LanesQuarantined counts lanes replaced after a panic trap.
	LanesQuarantined int
	// QueueHighWater is the deepest the shard queue got (≤ QueueDepth).
	QueueHighWater int
	// Wall is the host wall-clock duration of the whole run.
	Wall time.Duration
}

// Output concatenates the per-shard outputs in shard order.
func (r *Result) Output() []byte {
	var n int
	for _, o := range r.Outputs {
		n += len(o)
	}
	out := make([]byte, 0, n)
	for _, o := range r.Outputs {
		out = append(out, o...)
	}
	return out
}

type workItem struct {
	idx     int
	data    []byte
	attempt int           // 0 = first execution
	prev    time.Duration // last backoff (decorrelated jitter state)
	enq     time.Time     // when the item was offered to the queue (StageQueue)
}

// parked is one finished shard waiting in the reorder window for a slower
// predecessor (out is nil for a shard skipped under CollectErrors).
type parked struct {
	out []byte
	at  time.Time
}

// mem is the shared slab manager backing the sink output windows here and
// the chunker buffers in source.go. The Sink contract forbids retaining
// out past the call, so a delivered buffer's slab can back a later
// shard's output; Recycler does the same for input shards.
var mem = memsys.Default()

// Run streams shards from src through a pool of reusable lanes executing
// img, and aggregates outputs, matches and counters in shard order. It
// returns when the source is drained, ctx is cancelled (the context error
// is returned), or — under FailFast — a shard fails with no retries left.
//
// Fault containment: every shard attempt runs sandboxed — a panic in lane
// code becomes a fault.TrapPanic and the lane is quarantined and replaced,
// never taking the pool down. Cancellation interrupts in-flight lanes
// (machine.Lane.BindStop) and Run does not return until every lane
// goroutine has exited, so no lane still holds its memory banks when the
// caller moves on — Lane.Reset can never race a still-running lane.
func Run(ctx context.Context, img *effclip.Image, src Source, cfg Config) (*Result, error) {
	if img == nil {
		return nil, ErrNilImage
	}
	if src == nil {
		return nil, ErrNilSource
	}
	limit := machine.MaxLanes(img)
	if limit == 0 {
		return nil, fault.New(fault.TrapMemOutOfWindow, img.Name, "image does not fit local memory")
	}
	lanes := cfg.Lanes
	if lanes <= 0 || lanes > limit {
		lanes = limit
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 2 * lanes
	}

	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// All shared mutable state lives in one runState allocation: spreading
	// it over local variables captured by the orchestration closures made
	// each variable escape to the heap on its own — ~26 one-object
	// allocations per request on the serving path.
	s := &runState{
		ctx: ctx, cancel: cancel, img: img, src: src, cfg: cfg,
		res:   &Result{},
		queue: make(chan workItem, depth),
		lanes: lanes, laneCycles: make([]uint64, lanes),
		// The request span carried by ctx (if any) parents one "shard"
		// span per attempt, each wrapping a "lane.run" span — the
		// request → shards → lane-runs trace tree. A nil span makes every
		// span call in the workers a no-op.
		reqSpan: obs.SpanFromContext(ctx),
		// The request stage clock rides the context the same way; a nil
		// clock makes every Add a no-op, so unserved runs pay one branch.
		clock: obs.StagesFromContext(ctx),
	}
	s.res.RunResult.Lanes = lanes
	s.res.RunResult.BanksPerLane = img.Banks()

	// Shard buffers flow back to a recycling source once finally resolved
	// (the lane pool only reads a shard between SetInput and the end of its
	// Run, and outputs are copied, so resolution is the last touch).
	s.recycle, _ = src.(Recycler)

	// Reorder window for Config.Sink: finished outputs park here (nil for a
	// shard skipped under CollectErrors) until every predecessor has been
	// delivered, so the sink sees outputs in shard order.
	if cfg.Sink != nil {
		s.pending = make(map[int]parked)
	}

	// The cooperative stop flag interrupts lanes mid-shard on cancellation,
	// so a fail-fast or cancelled run drains in dispatches, not in up to
	// 2^33 cycles of leftover work per in-flight lane.
	go s.watchStop()

	s.wg.Add(1)
	go s.produce()
	s.wg.Wait()

	if s.runErr != nil {
		return nil, s.runErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := s.res
	res.Outputs = s.outputs
	res.Matches = s.matches
	res.Total = s.total
	for _, b := range s.shardBytes {
		res.InputBytes += b
	}
	for _, c := range s.laneCycles {
		if c > res.Cycles {
			res.Cycles = c
		}
	}
	res.Errors = s.shardErrs
	res.QueueHighWater = s.highWater
	res.Wall = time.Since(start)
	return res, nil
}

// runState is one Run's shared orchestration state. The producer, the lane
// workers and the retry timers all hold the same *runState, so the whole
// run costs a single heap allocation for its bookkeeping.
type runState struct {
	ctx     context.Context
	cancel  context.CancelFunc
	img     *effclip.Image
	src     Source
	cfg     Config
	res     *Result
	queue   chan workItem
	recycle Recycler
	reqSpan *obs.Span
	clock   *obs.StageClock
	lanes   int

	mu         sync.Mutex // guards everything below, and serializes Hook and Sink
	outputs    [][]byte
	matches    [][]machine.Match
	shardBytes []int
	total      machine.Stats
	shardErrs  []ShardError
	runErr     error // first fatal error (FailFast shard error or source error)
	highWater  int
	inflight   int  // shards enqueued but not finally resolved (retries keep it held)
	prodDone   bool // producer has stopped enqueuing new shards
	pending    map[int]parked
	sinkNext   int
	spawned    int
	laneCycles []uint64

	busy      atomic.Int32
	stop      atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup
}

func (s *runState) watchStop() {
	<-s.ctx.Done()
	s.stop.Store(true)
}

// maybeClose runs with mu held. The queue closes only when the producer is
// done AND no shard is still in flight: a retry re-enqueues through this
// same queue (possibly from a backoff timer firing after the producer
// exits), and holding inflight above zero until a shard's final resolution
// is what makes that send race-free against the close.
func (s *runState) maybeClose() {
	if s.prodDone && s.inflight == 0 {
		s.closeOnce.Do(func() { close(s.queue) })
	}
}

func (s *runState) setSlot(idx int, out []byte, m []machine.Match, bytes int) {
	for len(s.outputs) <= idx {
		s.outputs = append(s.outputs, nil)
		s.matches = append(s.matches, nil)
		s.shardBytes = append(s.shardBytes, 0)
	}
	s.outputs[idx] = out
	s.matches[idx] = m
	s.shardBytes[idx] = bytes
}

func (s *runState) fail(err error) {
	if s.runErr == nil {
		s.runErr = err
	}
	s.cancel()
}

// drainSink runs with mu held; it delivers every ready output in shard
// order and parks the rest in the reorder window.
func (s *runState) drainSink() {
	for {
		p, ok := s.pending[s.sinkNext]
		if !ok {
			return
		}
		delete(s.pending, s.sinkNext)
		s.sinkNext++
		// Reorder-window dwell: how long this finished shard waited for a
		// slower predecessor before the sink could take it.
		s.clock.Add(obs.StageSink, time.Since(p.at))
		if p.out == nil { // failed shard under CollectErrors
			continue
		}
		if err := s.cfg.Sink(s.sinkNext-1, p.out); err != nil {
			s.fail(fmt.Errorf("sched: sink: %w", err))
			return
		}
		mem.Put(p.out)
	}
}

// spawnWorkers runs with mu held. Lane workers spawn on demand: worker w
// starts only once the producer has seen at least w+1 shards (capped at
// lanes), so a one-shard request pays for one goroutine instead of
// MaxLanes — previously the serving path's single largest per-request
// allocation.
func (s *runState) spawnWorkers(want int) {
	for s.spawned < s.lanes && s.spawned < want {
		s.wg.Add(1)
		go s.worker(s.spawned)
		s.spawned++
	}
}

// produce pulls shards from the source into the bounded queue. Each shard
// raises inflight before the send so the queue cannot close underneath it;
// whoever finally resolves the shard lowers it.
func (s *runState) produce() {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		s.prodDone = true
		s.maybeClose()
		s.mu.Unlock()
	}()
	for idx := 0; ; idx++ {
		// Chunking time is Next() wall time minus whatever the underlying
		// body reads spent inside gzip inflate (already attributed to
		// StageDecode by the server's reader wrapper). The producer is the
		// only goroutine pulling the source, so the decode delta is exact.
		t0 := time.Now()
		dec0 := s.clock.NS(obs.StageDecode)
		shard, err := s.src.Next()
		s.clock.Add(obs.StageChunk,
			time.Since(t0)-time.Duration(s.clock.NS(obs.StageDecode)-dec0))
		if err == io.EOF {
			return
		}
		if err != nil {
			s.mu.Lock()
			s.fail(fmt.Errorf("sched: source: %w", err))
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		s.inflight++
		s.res.Shards = idx + 1
		s.spawnWorkers(idx + 1)
		s.mu.Unlock()
		select {
		case s.queue <- workItem{idx: idx, data: shard, enq: time.Now()}:
			s.mu.Lock()
			if d := len(s.queue); d > s.highWater {
				s.highWater = d
			}
			s.mu.Unlock()
		case <-s.ctx.Done():
			s.mu.Lock()
			s.inflight--
			s.mu.Unlock()
			return
		}
	}
}

// worker is one lane of the pool: it owns a single lane and resets it
// between shards. The lane is created lazily so a panic quarantine
// (lane = nil) transparently replaces it on the next shard.
func (s *runState) worker(w int) {
	defer s.wg.Done()
	cfg := &s.cfg
	var lane *machine.Lane
	// One reusable histogram per worker: attached to the lane for
	// sampled shards, merged into the shared aggregate on exit.
	var lp *obs.LaneProfile
	if cfg.Profile != nil {
		lp = obs.NewLaneProfile(len(s.img.Words))
		defer func() { cfg.Profile.Merge(lp) }()
	}
	for {
		select {
		case <-s.ctx.Done():
			return
		case it, ok := <-s.queue:
			if !ok {
				return
			}
			// A cancelled run drops still-queued shards so the
			// cancel is observed within one shard boundary.
			if s.ctx.Err() != nil {
				return
			}
			if lane == nil {
				var err error
				lane, err = machine.NewLane(s.img, 0)
				if err != nil {
					s.mu.Lock()
					s.fail(err)
					s.mu.Unlock()
					return
				}
				lane.SetEngine(cfg.Engine)
				lane.BindStop(&s.stop)
			}
			if lp != nil {
				if cfg.ProfileSample <= 1 || it.idx%cfg.ProfileSample == 0 {
					lane.SetProfiler(lp)
					lp.Shard()
				} else {
					lane.SetProfiler(nil)
				}
			}
			// Queue dwell: enqueue offer (including any producer block on
			// a full queue) to this dequeue. Summed over shards.
			if !it.enq.IsZero() {
				s.clock.Add(obs.StageQueue, time.Since(it.enq))
			}
			qd := len(s.queue)
			nb := int(s.busy.Add(1))
			t0 := time.Now()
			sp := s.reqSpan.StartChild("shard")
			// The nil-span guard lives here, not in SetAttr: boxing the
			// int attrs into `any` allocates at the call site before the
			// method's own nil check could skip them.
			if sp != nil {
				sp.SetAttr("shard", it.idx)
				sp.SetAttr("attempt", it.attempt)
				sp.SetAttr("lane", w)
				sp.SetAttr("bytes", len(it.data))
			}
			laneSpan := sp.StartChild("lane.run")
			out, m, st, err := runShard(lane, it, s.img, s.cfg)
			ranOn := lane.EngineInUse()
			laneSpan.End()
			s.busy.Add(-1)
			if errors.Is(err, machine.ErrInterrupted) {
				// Interruption only fires on cancellation: the shard
				// is abandoned and Run reports the context error.
				sp.SetAttr("interrupted", true)
				sp.End()
				return
			}
			tr := fault.AsTrap(err)
			if sp != nil { // same boxing-at-call-site rule as above
				sp.SetAttr("cycles", st.Cycles)
				if tr != nil {
					sp.SetAttr("trap", tr.Kind.String())
				}
			}
			sp.End()
			quarantine := tr != nil && tr.Kind == fault.TrapPanic
			if quarantine {
				lane = nil // replaced lazily on the next shard
			}
			ev := Event{
				Shard: it.idx, Lane: w, Bytes: len(it.data),
				Cycles: st.Cycles, Wall: time.Since(t0),
				QueueDepth: qd, Busy: nb,
				Attempt: it.attempt, Engine: ranOn,
				Trap: tr, Err: err,
			}
			// Lane execution is resource time summed over shards; with
			// several lanes busy it can exceed the request's wall clock.
			s.clock.Add(obs.StageLane, ev.Wall)
			s.mu.Lock()
			if quarantine {
				s.res.LanesQuarantined++
			}
			if err != nil {
				retry := tr != nil && cfg.Retry.retryable(tr.Kind) &&
					it.attempt < cfg.Retry.Max && s.runErr == nil && s.ctx.Err() == nil
				ev.Retried = retry
				if tr != nil {
					rec := FaultRecord{
						Shard: it.idx, Lane: w, Attempt: it.attempt,
						Trap: tr, Retried: retry,
					}
					if retry {
						rec.Backoff = cfg.Retry.next(it.prev)
					}
					s.res.Faults = append(s.res.Faults, rec)
					if retry {
						s.res.Retries++
						next := workItem{
							idx: it.idx, data: it.data,
							attempt: it.attempt + 1, prev: rec.Backoff,
						}
						// The shard's inflight hold carries over to
						// the re-enqueue, so the queue stays open
						// until the timer delivers or the run dies.
						time.AfterFunc(rec.Backoff, func() {
							next.enq = time.Now()
							select {
							case s.queue <- next:
							case <-s.ctx.Done():
								if s.recycle != nil {
									s.recycle.Recycle(next.data)
								}
								s.mu.Lock()
								s.inflight--
								s.maybeClose()
								s.mu.Unlock()
							}
						})
					}
				}
				if !ev.Retried {
					if cfg.Policy == CollectErrors {
						s.shardErrs = append(s.shardErrs, ShardError{Shard: it.idx, Err: err})
						s.setSlot(it.idx, nil, nil, len(it.data))
						if cfg.Sink != nil {
							s.pending[it.idx] = parked{at: time.Now()}
							s.drainSink()
						}
					} else {
						s.fail(ShardError{Shard: it.idx, Err: err})
					}
					if s.recycle != nil {
						s.recycle.Recycle(it.data)
					}
					s.inflight--
					s.maybeClose()
				}
			} else {
				if cfg.Sink != nil {
					s.setSlot(it.idx, nil, m, len(it.data))
					s.pending[it.idx] = parked{out: out, at: time.Now()}
					s.drainSink()
				} else {
					s.setSlot(it.idx, out, m, len(it.data))
				}
				s.total.Add(st)
				s.laneCycles[w] += st.Cycles
				if s.recycle != nil {
					s.recycle.Recycle(it.data)
				}
				s.inflight--
				s.maybeClose()
			}
			if cfg.Hook != nil {
				cfg.Hook(ev)
			}
			s.mu.Unlock()
		}
	}
}

// runShard executes one shard attempt on a reused lane: reset, attach
// input, apply setup, run under the cycle budget, and copy out the results
// (the lane's buffers are recycled on the next Reset). The attempt is
// sandboxed — a panic anywhere in lane or setup code becomes a
// fault.TrapPanic instead of unwinding the pool — and a configured injector
// may pre-empt the lane with a synthesized trap (or, for TrapPanic, a real
// panic, so injection exercises the recover path itself).
func runShard(lane *machine.Lane, it workItem, img *effclip.Image, cfg Config) (out []byte, m []machine.Match, st machine.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, m, st = nil, nil, machine.Stats{}
			err = fault.New(fault.TrapPanic, img.Name, "shard %d attempt %d: %v\n%s",
				it.idx, it.attempt, r, trimStack(debug.Stack()))
		}
	}()
	if k := cfg.Inject.Draw(it.idx, it.attempt); k != fault.TrapNone {
		if k == fault.TrapPanic {
			panic(fmt.Sprintf("fault injection: shard %d attempt %d (seed %d)", it.idx, it.attempt, cfg.Inject.Seed))
		}
		return nil, nil, machine.Stats{}, cfg.Inject.Synthesize(k, img.Name, it.idx, it.attempt)
	}
	lane.Reset()
	lane.SetInput(it.data)
	if cfg.Setup != nil {
		if err := cfg.Setup(lane, it.idx); err != nil {
			return nil, nil, machine.Stats{}, err
		}
	}
	if err := lane.Run(cfg.Budget.For(len(it.data))); err != nil {
		return nil, nil, lane.Stats(), err
	}
	if cfg.Sink != nil {
		// Sink deliveries may not retain the slice, so the copy can come
		// from (and return to) the slab manager's output rings.
		out = append(mem.Get(len(lane.Output())), lane.Output()...)
	} else {
		out = append([]byte(nil), lane.Output()...)
	}
	m = append([]machine.Match(nil), lane.Matches()...)
	return out, m, lane.Stats(), nil
}

// trimStack bounds a panic stack so Trap.Detail stays readable in logs and
// error responses.
func trimStack(s []byte) []byte {
	const max = 2048
	if len(s) > max {
		return s[:max]
	}
	return s
}
