// Package udp_test benchmarks regenerate the paper's evaluation: one
// benchmark per table/figure (see DESIGN.md's experiment index). Each UDP
// benchmark reports both the host wall-clock of the simulation and, as
// custom metrics, the simulated accelerator rate (sim-MB/s at the 1.03 GHz
// ASIC clock) alongside the measured CPU-baseline rate where applicable.
//
//	go test -bench=. -benchmem
package udp_test

import (
	"testing"

	"udp"
	"udp/internal/cpumodel"
	"udp/internal/effclip"
	"udp/internal/etl"
	"udp/internal/experiments"
	"udp/internal/kernels/csvparse"
	"udp/internal/kernels/dict"
	"udp/internal/kernels/encodings"
	"udp/internal/kernels/histogram"
	"udp/internal/kernels/huffman"
	"udp/internal/kernels/jsonparse"
	"udp/internal/kernels/pattern"
	"udp/internal/kernels/snappy"
	"udp/internal/kernels/trigger"
	"udp/internal/machine"
	"udp/internal/workload"
)

func simRate(b *testing.B, bytes int, cycles uint64) {
	b.ReportMetric(machine.RateMBps(bytes, cycles), "sim-MB/s")
}

// BenchmarkFig1ETLLoad regenerates Figure 1's pipeline: gunzip + parse +
// deserialize of lineitem-like CSV, reporting the CPU/IO ratio.
func BenchmarkFig1ETLLoad(b *testing.B) {
	gz := etl.GzipBytes(etl.LineitemCSV(20000, 1))
	b.SetBytes(int64(len(gz)))
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, ph, err := etl.Load(gz)
		if err != nil {
			b.Fatal(err)
		}
		ratio = ph.CPUOverIO()
	}
	b.ReportMetric(ratio, "cpu/io")
}

// BenchmarkFig5BranchModels runs the BO and BI predictor simulations on the
// CSV kernel (Figure 5a/5b's CPU side).
func BenchmarkFig5BranchModels(b *testing.B) {
	data := workload.CrimesCSV(workload.CSVSpec{Name: "c", Rows: 500, Seed: 1})
	fsm, err := cpumodel.FromProgram(csvparse.BuildProgram(), 256)
	if err != nil {
		b.Fatal(err)
	}
	syms := cpumodel.BytesToSymbols(data)
	b.SetBytes(int64(len(syms)))
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		r := cpumodel.SimulateBO(fsm, syms)
		frac = r.MispredictFraction()
		cpumodel.SimulateBI(fsm, syms)
	}
	b.ReportMetric(100*frac, "bo-mispredict-%")
}

// BenchmarkFig8SsRefDecode runs the SsRef Huffman decoder (Figure 8's
// winning design point).
func BenchmarkFig8SsRefDecode(b *testing.B) {
	data := workload.Text(workload.TextEnglish, 1<<16, 2)
	tbl := huffman.Build(data)
	comp, _ := tbl.Encode(data)
	prog, err := huffman.BuildDecoder(tbl, huffman.SsRef)
	if err != nil {
		b.Fatal(err)
	}
	im, err := huffman.LayoutDecoder(prog, huffman.SsRef)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, st, err := huffman.RunDecoder(im, comp, len(data))
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	simRate(b, len(data), cycles)
}

// BenchmarkFig11BlockSweep compresses at the three Figure 11 block sizes.
func BenchmarkFig11BlockSweep(b *testing.B) {
	data := workload.Text(workload.TextHTML, 1<<17, 3)
	for _, bs := range []int{16 * 1024, 64 * 1024} {
		codec, err := snappy.NewCodec(bs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(bs), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var cycles uint64
			for i := 0; i < b.N; i++ {
				_, st, err := codec.CompressUDP(data)
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			simRate(b, len(data), cycles)
			b.ReportMetric(float64(codec.EncLanes()), "lanes")
		})
	}
}

func sizeName(bs int) string {
	return map[int]string{16384: "16KB", 32768: "32KB", 65536: "64KB"}[bs]
}

// BenchmarkFig13CSVCPU and ...UDP are the two sides of Figure 13.
func BenchmarkFig13CSVCPU(b *testing.B) {
	data := workload.CrimesCSV(workload.CSVSpec{Name: "c", Rows: 5000, Seed: 4})
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csvparse.Parse(data)
	}
}

func BenchmarkFig13CSVUDP(b *testing.B) {
	data := workload.CrimesCSV(workload.CSVSpec{Name: "c", Rows: 5000, Seed: 4})
	im, err := udp.Compile(csvparse.BuildProgram())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		lane, err := udp.RunLane(im, data)
		if err != nil {
			b.Fatal(err)
		}
		cycles = lane.Stats().Cycles
	}
	simRate(b, len(data), cycles)
}

// BenchmarkFig14HuffmanEncode covers Figure 14 (UDP side).
func BenchmarkFig14HuffmanEncode(b *testing.B) {
	data := workload.Text(workload.TextEnglish, 1<<16, 5)
	tbl := huffman.Build(data)
	im, err := effclip.Layout(huffman.BuildEncoder(tbl), effclip.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, st, err := huffman.RunEncoder(im, data)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	simRate(b, len(data), cycles)
}

// BenchmarkFig15HuffmanDecodeCPU is the libhuffman-style baseline of Figure
// 15 (the UDP side is BenchmarkFig8SsRefDecode).
func BenchmarkFig15HuffmanDecodeCPU(b *testing.B) {
	data := workload.Text(workload.TextEnglish, 1<<16, 5)
	tbl := huffman.Build(data)
	comp, _ := tbl.Encode(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Decode(comp, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16Pattern covers Figure 16: ADFA scan on the UDP.
func BenchmarkFig16Pattern(b *testing.B) {
	pats := workload.NIDSPatterns(12, false, 6)
	set, err := pattern.Compile(pats)
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.NetworkTrace(1<<18, pats, 0.05, 7)
	prog, err := set.BuildADFA()
	if err != nil {
		b.Fatal(err)
	}
	im, err := udp.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(trace)))
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		lane, err := udp.RunLane(im, trace)
		if err != nil {
			b.Fatal(err)
		}
		cycles = lane.Stats().Cycles
	}
	simRate(b, len(trace), cycles)
}

// BenchmarkFig17DictRLE covers Figure 17.
func BenchmarkFig17DictRLE(b *testing.B) {
	d, err := dict.NewDictionary(workload.LocationDomain)
	if err != nil {
		b.Fatal(err)
	}
	stream := dict.Join(workload.DictColumn(50000, workload.LocationDomain, 8))
	im, err := udp.Compile(d.BuildProgram(true))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(stream)))
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		lane, err := udp.RunLane(im, stream)
		if err != nil {
			b.Fatal(err)
		}
		cycles = lane.Stats().Cycles
	}
	simRate(b, len(stream), cycles)
}

// BenchmarkFig18Histogram covers Figure 18.
func BenchmarkFig18Histogram(b *testing.B) {
	values := workload.FloatColumn(100000, workload.DistNormal, 41.6, 42.0, 9)
	edges := histogram.UniformEdges(10, 41.6, 42.0)
	prog, err := histogram.BuildProgram(edges)
	if err != nil {
		b.Fatal(err)
	}
	im, err := udp.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	keys := histogram.KeyBytes(values)
	b.SetBytes(int64(len(keys)))
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		lane, err := udp.RunLane(im, keys)
		if err != nil {
			b.Fatal(err)
		}
		cycles = lane.Stats().Cycles
	}
	simRate(b, len(keys), cycles)
}

// BenchmarkFig19SnappyCompress / BenchmarkFig20SnappyDecompress cover
// Figures 19 and 20 (UDP side), with the CPU baselines alongside.
func BenchmarkFig19SnappyCompressUDP(b *testing.B) {
	data := workload.Text(workload.TextHTML, 1<<17, 10)
	codec, err := snappy.NewCodec(16 * 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, st, err := codec.CompressUDP(data)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	simRate(b, len(data), cycles)
}

func BenchmarkFig19SnappyCompressCPU(b *testing.B) {
	data := workload.Text(workload.TextHTML, 1<<17, 10)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snappy.Encode(data)
	}
}

func BenchmarkFig20SnappyDecompressUDP(b *testing.B) {
	data := workload.Text(workload.TextHTML, 1<<17, 10)
	codec, err := snappy.NewCodec(16 * 1024)
	if err != nil {
		b.Fatal(err)
	}
	blocks := snappy.EncodeBlocked(data, 16*1024, true)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, st, err := codec.DecompressUDP(blocks)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	simRate(b, len(data), cycles)
}

func BenchmarkFig20SnappyDecompressCPU(b *testing.B) {
	data := workload.Text(workload.TextHTML, 1<<17, 10)
	comp := snappy.Encode(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snappy.Decode(comp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrigger covers Section 5.7.
func BenchmarkTrigger(b *testing.B) {
	wave := workload.Waveform(1<<19, 11)
	fsm, err := trigger.NewFSM(5, trigger.DefaultThresholds)
	if err != nil {
		b.Fatal(err)
	}
	im, err := udp.Compile(fsm.BuildProgram())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(wave)))
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		lane, err := udp.RunLane(im, wave)
		if err != nil {
			b.Fatal(err)
		}
		cycles = lane.Stats().Cycles
	}
	simRate(b, len(wave), cycles)
}

// BenchmarkFig21Overall runs the full Figure 21/22 collection (all kernels,
// CPU and UDP sides) once per iteration.
func BenchmarkFig21Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("fig21", experiments.Config{Scale: 1, Seed: int64(100 + i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3PowerModel exercises the Table 3 rendering path.
func BenchmarkTable3PowerModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("table3", experiments.Config{Scale: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineDispatch measures raw simulator dispatch throughput (the
// identity-copy program).
func BenchmarkMachineDispatch(b *testing.B) {
	p := udp.NewProgram("copy", 8)
	s := p.AddState("s", udp.ModeStream)
	s.Majority(s)
	im, err := udp.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1<<16)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := udp.RunLane(im, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtEncodingsRLE covers the extension RLE kernel (UDP side).
func BenchmarkExtEncodingsRLE(b *testing.B) {
	data := workload.Text(workload.TextRuns, 1<<17, 12)
	im, err := effclip.Layout(encodings.BuildRLEEncoder(), effclip.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		lane, err := udp.RunLane(im, data)
		if err != nil {
			b.Fatal(err)
		}
		cycles = lane.Stats().Cycles
	}
	simRate(b, len(data), cycles)
}

// BenchmarkExtJSONTokenize covers the extension JSON kernel (UDP side).
func BenchmarkExtJSONTokenize(b *testing.B) {
	data := workload.JSONRecords(4000, 13)
	im, err := effclip.Layout(jsonparse.BuildProgram(), effclip.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		lane, err := udp.RunLane(im, data)
		if err != nil {
			b.Fatal(err)
		}
		cycles = lane.Stats().Cycles
	}
	simRate(b, len(data), cycles)
}

// BenchmarkEffCLiPLayout measures the layout engine itself on the NIDS ADFA
// program (compiler-side cost).
func BenchmarkEffCLiPLayout(b *testing.B) {
	pats := workload.NIDSPatterns(12, false, 14)
	set, err := pattern.Compile(pats)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := set.BuildADFA()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := effclip.Layout(prog, effclip.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
