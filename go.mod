module udp

go 1.22
