// Command smoke is the CI end-to-end check for udpserved: it builds the
// real binary, starts it on a random port, streams a gzip'd CSV body
// through POST /v1/transform/csvparse, verifies the tokenized output and
// the metrics surface, then shuts the server down gracefully with SIGTERM
// and checks the exit status. Run via `make smoke`.
package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"udp/internal/client"
	"udp/internal/kernels/csvparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("smoke: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "udpserved-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "udpserved")

	build := exec.Command("go", "build", "-o", bin, "./cmd/udpserved")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building udpserved: %w", err)
	}

	srv := exec.Command(bin, "-addr", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		return err
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		return fmt.Errorf("starting udpserved: %w", err)
	}
	defer srv.Process.Kill() // no-op when the graceful path already reaped it

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if rest, ok := strings.CutPrefix(line, "udpserved: listening on "); ok {
				addrCh <- strings.TrimSpace(rest)
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("server never announced its address")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := client.New("http://"+addr, nil)
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	var csv bytes.Buffer
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&csv, "row-%d,\"field, quoted %d\",tail\n", i, i)
	}
	got, err := c.TransformGzipBytes(ctx, "csvparse", csv.Bytes())
	if err != nil {
		return fmt.Errorf("transform: %w", err)
	}
	want := csvparse.Parse(csv.Bytes())
	if !bytes.Equal(got, want) {
		return fmt.Errorf("transform output mismatch: got %d bytes, want %d", len(got), len(want))
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, needle := range []string{
		`udpserved_requests_total{program="csvparse",code="200"} 1`,
		`udpserved_shards_total{program="csvparse"}`,
	} {
		if !strings.Contains(metrics, needle) {
			return fmt.Errorf("metrics missing %q", needle)
		}
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("udpserved exit: %w", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("udpserved did not exit after SIGTERM")
	}

	return chaosLeg(bin)
}

// chaosLeg restarts the binary under 100% once-only panic injection
// (UDP_FAULT_INJECT): every shard's first attempt panics, the lane is
// quarantined, and the retry policy must still deliver a byte-exact 200 —
// with the fault surface visible in /metrics.
func chaosLeg(bin string) error {
	srv := exec.Command(bin, "-addr", "127.0.0.1:0", "-retries", "2")
	srv.Env = append(os.Environ(), "UDP_FAULT_INJECT=seed=1,once=1,panic=1")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		return err
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		return fmt.Errorf("chaos: starting udpserved: %w", err)
	}
	defer srv.Process.Kill()

	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if rest, ok := strings.CutPrefix(line, "udpserved: listening on "); ok {
				addrCh <- strings.TrimSpace(rest)
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("chaos: server never announced its address")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := client.New("http://"+addr, nil)
	payload := []byte("chaos payload survives injected panics")
	got, err := c.TransformBytes(ctx, "echo", payload)
	if err != nil {
		return fmt.Errorf("chaos: transform under panic injection: %w", err)
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("chaos: echo output mismatch: got %d bytes, want %d", len(got), len(payload))
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("chaos: metrics: %w", err)
	}
	for _, needle := range []string{
		`udp_faults_total{trap="panic"}`,
		`udpserved_requests_total{program="echo",code="200"} 1`,
	} {
		if !strings.Contains(metrics, needle) {
			return fmt.Errorf("chaos: metrics missing %q", needle)
		}
	}
	if strings.Contains(metrics, "udp_retries_total 0\n") {
		return fmt.Errorf("chaos: udp_retries_total is zero despite injected panics")
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("chaos: SIGTERM: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("chaos: udpserved exit: %w", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("chaos: udpserved did not exit after SIGTERM")
	}
	return nil
}
