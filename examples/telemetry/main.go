// telemetry: a streaming sensor pipeline on the UDP — trigger on waveform
// transitions (paper Section 5.7) and histogram a telemetry column (Section
// 5.5), both verified against their CPU baselines.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"

	"udp"
	"udp/internal/kernels/histogram"
	"udp/internal/kernels/trigger"
	"udp/internal/workload"
)

func main() {
	// 1. Transition localization over a pulsed waveform.
	wave := workload.Waveform(1<<20, 99)
	fsm, err := trigger.NewFSM(4, trigger.DefaultThresholds)
	if err != nil {
		log.Fatal(err)
	}
	im, err := udp.Compile(fsm.BuildProgram())
	if err != nil {
		log.Fatal(err)
	}
	lane, err := udp.RunLane(im, wave)
	if err != nil {
		log.Fatal(err)
	}
	want := fsm.Triggers(wave)
	if len(lane.Matches()) != len(want) {
		log.Fatalf("UDP %d triggers, CPU %d", len(lane.Matches()), len(want))
	}
	fmt.Printf("p4 trigger: %d edges in %.1f MS samples at %.0f MB/s/lane (CPU agrees)\n",
		len(want), float64(len(wave))/1e6,
		udp.RateMBps(len(wave), lane.Stats().Cycles))

	// 2. Histogram the fare-like column with percentile bins.
	fares := workload.FloatColumn(200000, workload.DistExp, 2.5, 80, 5)
	edges := histogram.PercentileEdges(4, fares[:2048])
	prog, err := histogram.BuildProgram(edges)
	if err != nil {
		log.Fatal(err)
	}
	him, err := udp.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	hlane, err := udp.RunLane(him, histogram.KeyBytes(fares))
	if err != nil {
		log.Fatal(err)
	}
	got := histogram.ReadCounts(hlane.Mem(), 4)
	ref := histogram.Histogram(edges, fares)
	for i := range ref {
		if got[i] != ref[i] {
			log.Fatalf("bin %d: UDP %d, CPU %d", i, got[i], ref[i])
		}
	}
	fmt.Printf("fare histogram (percentile bins): %v at %.0f MB/s/lane (CPU agrees)\n",
		got, udp.RateMBps(8*len(fares), hlane.Stats().Cycles))
	fmt.Printf("edges: %.2f / %.2f / %.2f / %.2f / %.2f\n",
		edges[0], edges[1], edges[2], edges[3], edges[4])
}
