// queryscan: query execution on encoded data (paper Section 2.1: "columnar
// databases encode attributes ... and allow for query predicates to be
// pushed down directly on encoded data"). The pipeline dictionary-encodes a
// categorical column on the UDP, then a second UDP program scans the
// *encoded* uint16 stream for a predicate code set, emitting matching row
// numbers — no decoding, 2 bytes per row.
//
//	go run ./examples/queryscan
package main

import (
	"fmt"
	"log"

	"udp"
	"udp/internal/core"
	"udp/internal/kernels/dict"
	"udp/internal/workload"
)

// buildScan compiles the predicate "column IN codes" over little-endian
// uint16 codes: dispatch on the low byte selects candidate codes, the high
// byte confirms; every row advances the row counter in R1.
func buildScan(codes []uint16) *udp.Program {
	p := udp.NewProgram("codescan", 8)
	first := p.AddState("lo", udp.ModeStream)
	skip := p.AddState("skip", udp.ModeCommon)
	bump := []core.Action{core.AAddi(core.R1, core.R1, 1)}
	skip.Common(first, bump...)

	byLo := map[byte][]uint16{}
	for _, c := range codes {
		byLo[byte(c)] = append(byLo[byte(c)], c)
	}
	for lo, cs := range byLo {
		hi := p.AddState(fmt.Sprintf("hi%02x", lo), udp.ModeStream)
		first.On(uint32(lo), hi)
		for _, c := range cs {
			// Matching row: emit its row number, then count it.
			hi.On(uint32(c>>8), first,
				core.AOut32(core.R1), core.AAddi(core.R1, core.R1, 1))
		}
		hi.Majority(first, bump...)
	}
	first.Majority(skip)
	return p
}

func main() {
	// Build the encoded column.
	domain := workload.LocationDomain
	column := workload.DictColumn(200000, domain, 42)
	d, err := dict.NewDictionary(domain)
	if err != nil {
		log.Fatal(err)
	}
	stream := dict.Join(column)
	encIm, err := udp.Compile(d.BuildProgram(false))
	if err != nil {
		log.Fatal(err)
	}
	encLane, err := udp.RunLane(encIm, stream)
	if err != nil {
		log.Fatal(err)
	}
	codes := append([]byte(nil), encLane.Output()...)
	fmt.Printf("encoded %d rows: %d B -> %d B (%.1fx)\n",
		len(column), len(stream), len(codes), float64(len(stream))/float64(len(codes)))

	// Predicate: location IN ('STREET', 'ALLEY').
	var want []uint16
	predicate := map[string]bool{"STREET": true, "ALLEY": true}
	for code, v := range d.Values {
		if predicate[v] {
			want = append(want, uint16(code))
		}
	}
	scanIm, err := udp.Compile(buildScan(want))
	if err != nil {
		log.Fatal(err)
	}
	lane, err := udp.RunLane(scanIm, codes)
	if err != nil {
		log.Fatal(err)
	}
	out := lane.Output()
	hits := len(out) / 4

	// Verify against a direct scan of the raw column.
	expect := 0
	for _, v := range column {
		if predicate[v] {
			expect++
		}
	}
	if hits != expect {
		log.Fatalf("UDP found %d rows, expected %d", hits, expect)
	}
	first := uint32(out[0]) | uint32(out[1])<<8 | uint32(out[2])<<16 | uint32(out[3])<<24
	st := lane.Stats()
	fmt.Printf("predicate scan on encoded data: %d/%d rows match (first at row %d)\n",
		hits, len(column), first)
	rowsPerSec := float64(len(column)) / (float64(st.Cycles) / udp.ClockHz)
	fmt.Printf("scan rate: %.0f MB/s/lane over encoded bytes = %.0f M rows/s/lane; %.2f cycles/row\n",
		udp.RateMBps(len(codes), st.Cycles), rowsPerSec/1e6,
		float64(st.Cycles)/float64(len(column)))
}
