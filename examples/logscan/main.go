// logscan: NIDS-style multi-pattern scanning (paper Section 5.3) — compile a
// rule set to the ADFA model, scan a synthetic traffic trace on the UDP, and
// verify every hit against the software matcher.
//
//	go run ./examples/logscan
package main

import (
	"fmt"
	"log"

	"udp"
	"udp/internal/kernels/pattern"
	"udp/internal/workload"
)

func main() {
	rules := []string{
		"wget http", "base64_decode", `passwd=[a-z0-9]{4,8}`,
		"drop table", "overflow", `eval\(`,
	}
	set, err := pattern.Compile(rules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d rules: %d DFA states (minimized), %d NFA states\n",
		len(rules), len(set.DFA.States), len(set.NFA.States))

	trace := workload.NetworkTrace(1<<20, rules, 0.02, 7)

	prog, err := set.BuildADFA()
	if err != nil {
		log.Fatal(err)
	}
	im, err := udp.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	lane, err := udp.RunLane(im, trace)
	if err != nil {
		log.Fatal(err)
	}
	got := pattern.Dedup(lane.Matches())
	want := set.MatchCPU(trace)
	pattern.SortEventsInPlace(want)
	if len(got) != len(want) {
		log.Fatalf("UDP found %d hits, CPU %d", len(got), len(want))
	}
	st := lane.Stats()
	fmt.Printf("scanned %.1f MB at %.0f MB/s per lane (%.2f cycles/byte), %d hits, all verified\n",
		float64(len(trace))/1e6, udp.RateMBps(len(trace), st.Cycles),
		float64(st.Cycles)/float64(len(trace)), len(got))

	perRule := map[int32]int{}
	for _, m := range got {
		perRule[m.ID]++
	}
	for i, r := range rules {
		fmt.Printf("  rule %-24q %5d hits\n", r, perRule[int32(i)])
	}
	fmt.Printf("full UDP (%d lanes): ~%.1f GB/s aggregate\n",
		udp.MaxLanes(im), float64(udp.MaxLanes(im))*udp.RateMBps(len(trace), st.Cycles)/1000)
}
