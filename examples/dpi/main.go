// dpi: deep packet inspection (paper Section 2.1, Network Intrusion
// Detection): packets arrive Snappy-compressed, a UDP lane decompresses each
// block in local memory, and a second UDP program scans the recovered
// payload for intrusion signatures — the multi-level inspection pipeline the
// paper motivates, entirely on the accelerator.
//
//	go run ./examples/dpi
package main

import (
	"bytes"
	"fmt"
	"log"

	"udp"
	"udp/internal/kernels/pattern"
	"udp/internal/kernels/snappy"
	"udp/internal/workload"
)

func main() {
	rules := []string{"exploit", "wget http", `cmd=[a-z]{3,6}`, "base64_decode"}
	// HTTP-ish payload: markup-heavy text with planted signature hits.
	payload := workload.Text(workload.TextHTML, 1<<19, 99)
	for off := 9000; off+64 < len(payload); off += 9000 {
		copy(payload[off:], rules[(off/9000)%2]) // plant literal rules
	}

	// The wire carries compressed blocks.
	codec, err := snappy.NewCodec(16 * 1024)
	if err != nil {
		log.Fatal(err)
	}
	blocks := snappy.EncodeBlocked(payload, 16*1024, true)
	wire := snappy.BlocksToStream(blocks)
	fmt.Printf("wire traffic: %.1f KB compressed (%.2f ratio) in %d blocks\n",
		float64(len(wire))/1024, snappy.Ratio(len(wire), len(payload)), len(blocks))

	// Level 1: decompress on the UDP.
	recovered, dst, err := codec.DecompressUDP(blocks)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(recovered, payload) {
		log.Fatal("decompression corrupted the payload")
	}
	fmt.Printf("level 1 (decompress): %.1f KB at %.0f MB/s/lane\n",
		float64(len(recovered))/1024, udp.RateMBps(len(recovered), dst.Cycles))

	// Level 2: signature scan on the UDP.
	set, err := pattern.Compile(rules)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := set.BuildADFA()
	if err != nil {
		log.Fatal(err)
	}
	im, err := udp.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	lane, err := udp.RunLane(im, recovered)
	if err != nil {
		log.Fatal(err)
	}
	hits := pattern.Dedup(lane.Matches())
	want := set.MatchCPU(recovered)
	if len(hits) != len(want) {
		log.Fatalf("UDP flagged %d signatures, CPU %d", len(hits), len(want))
	}
	fmt.Printf("level 2 (inspect): %d signature hits at %.0f MB/s/lane, all verified\n",
		len(hits), udp.RateMBps(len(recovered), lane.Stats().Cycles))

	// End-to-end: cycles are additive on one lane; blocks pipeline across
	// lanes in deployment.
	total := dst.Cycles + lane.Stats().Cycles
	fmt.Printf("end-to-end single lane: %.0f MB/s of wire traffic (%.0f MB/s of payload)\n",
		udp.RateMBps(len(wire), total), udp.RateMBps(len(payload), total))
}
