// assembler: the software-stack path of paper Figure 12 — write UDP assembly
// by hand, assemble it, inspect the EffCLiP layout, and run it. The program
// is a bracket-depth checker: it tracks nesting depth of (), flags underflow
// with an accept event, and reports the maximum depth in a register.
//
//	go run ./examples/assembler
package main

import (
	"fmt"
	"log"

	"udp"
	"udp/internal/asm"
	"udp/internal/core"
	"udp/internal/effclip"
)

const source = `
; bracket-depth tracker: r1 = current depth, r2 = max depth
program brackets symbol 8

state scan stream
  on '(' -> scan { addi r1, r1, #1; max r2, r2, r1 }
  on ')' -> scan { subi r1, r1, #1 }
  majority -> scan
`

func main() {
	prog, err := asm.Parse(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("canonical form:")
	fmt.Print(asm.Format(prog))

	im, err := effclip.Layout(prog, effclip.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlayout: %d transition words, %d action words, %d B code, %d segment(s)\n",
		im.TransWords, im.ActionWords, im.CodeBytes(), len(im.Segments))

	input := []byte("((a(b)c)((d)))x")
	lane, err := udp.RunLane(im, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input %q: final depth %d, max depth %d, %d cycles (%.0f MB/s/lane)\n",
		input, int32(lane.Reg(core.R1)), lane.Reg(core.R2),
		lane.Stats().Cycles, udp.RateMBps(len(input), lane.Stats().Cycles))
}
