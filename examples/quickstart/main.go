// Quickstart: build a tiny UDP program with the builder API, compile it with
// EffCLiP, and run it on the cycle-level machine.
//
// The program is a word tokenizer: it copies letters through, collapses any
// run of non-letters into a single newline, and counts words in a register —
// the "hello world" of symbol-oriented multi-way dispatch.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"udp"
	"udp/internal/core"
)

func main() {
	p := udp.NewProgram("wordtok", 8)

	inWord := p.AddState("word", udp.ModeStream)
	gap := p.AddState("gap", udp.ModeStream)
	p.Entry = gap

	// Letters pass through; entering a word bumps the counter in R1.
	for c := byte('a'); c <= 'z'; c++ {
		gap.On(uint32(c), inWord,
			core.AAddi(core.R1, core.R1, 1), core.AOut8(core.RSym))
		inWord.On(uint32(c), inWord, core.AOut8(core.RSym))
	}
	for c := byte('A'); c <= 'Z'; c++ {
		gap.On(uint32(c), inWord,
			core.AAddi(core.R1, core.R1, 1), core.AOut8(core.RSym))
		inWord.On(uint32(c), inWord, core.AOut8(core.RSym))
	}
	// Anything else: close the word (emit one separator) or stay in the gap.
	nl := []core.Action{core.AMovi(core.R2, '\n'), core.AOut8(core.R2)}
	inWord.Majority(gap, nl...)
	gap.Majority(gap)

	im, err := udp.Compile(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d B code, fits %d lanes\n",
		p.Name, im.CodeBytes(), udp.MaxLanes(im))

	input := []byte("The UDP accelerates extract, transform & load!")
	lane, err := udp.RunLane(im, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tokens:\n%s\n", lane.Output())
	st := lane.Stats()
	fmt.Printf("words=%d cycles=%d dispatches=%d rate=%.0f MB/s at the 1.03 GHz ASIC clock\n",
		lane.Reg(core.R1), st.Cycles, st.Dispatches, udp.RateMBps(len(input), st.Cycles))
}
