// csvload: the paper's motivating ETL scenario end to end on the UDP —
// stream a crimes-like CSV through the lane-pool executor (many more
// record-aligned shards than lanes, live per-shard throughput), then
// dictionary-encode a categorical column, comparing against the CPU
// baselines.
//
//	go run ./examples/csvload
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"udp"
	"udp/internal/core"
	"udp/internal/kernels/csvparse"
	"udp/internal/kernels/dict"
	"udp/internal/workload"
)

func main() {
	data := workload.CrimesCSV(workload.CSVSpec{Name: "crimes", Rows: 20000, Seed: 1})
	fmt.Printf("dataset: %.1f MB crimes-like CSV\n", float64(len(data))/1e6)

	// CPU baseline.
	t0 := time.Now()
	cpuTok := csvparse.Parse(data)
	cpuTime := time.Since(t0)
	fmt.Printf("CPU parse: %.1f MB/s\n", float64(len(data))/1e6/cpuTime.Seconds())

	// UDP: stream record-aligned shards through the lane pool — the input
	// is chunked far finer than the lane count and time-multiplexed, with
	// the stats hook reporting live progress every 64 shards.
	im, err := udp.Compile(csvparse.BuildProgram())
	if err != nil {
		log.Fatal(err)
	}
	var shardsDone, bytesDone int
	res, err := udp.Exec(context.Background(), im, bytes.NewReader(data),
		udp.WithChunker('\n'),
		udp.WithChunkBytes(8<<10),
		udp.WithStatsHook(func(e udp.ShardEvent) {
			shardsDone++
			bytesDone += e.Bytes
			if shardsDone%64 == 0 {
				fmt.Printf("  ... %d shards, %.1f MB in, queue depth %d, shard rate %.0f MB/s\n",
					shardsDone, float64(bytesDone)/1e6, e.QueueDepth, e.Rate())
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(res.Output(), cpuTok) {
		log.Fatal("UDP and CPU tokenizations differ")
	}
	fmt.Printf("UDP parse: %d shards over %d lanes, %.0f MB/s aggregate (verified identical output)\n",
		res.Shards, res.Lanes, res.Rate())

	// Extract the LocationDescription column (index 6) and
	// dictionary-encode it on the UDP.
	var col []string
	for _, row := range csvparse.Rows(cpuTok) {
		if len(row) > 6 {
			col = append(col, row[6])
		}
	}
	d, err := dict.NewDictionary(workload.LocationDomain)
	if err != nil {
		log.Fatal(err)
	}
	stream := dict.Join(col)
	dictIm, err := udp.Compile(d.BuildProgram(false))
	if err != nil {
		log.Fatal(err)
	}
	lane, err := udp.RunLane(dictIm, stream)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(lane.Output(), d.Encode(stream)) {
		log.Fatal("UDP dictionary codes differ from baseline")
	}
	fmt.Printf("dictionary-encoded %d values (%d B -> %d B), UDP lane rate %.0f MB/s\n",
		len(col), len(stream), len(lane.Output()),
		udp.RateMBps(len(stream), lane.Stats().Cycles))
	_ = core.R0
}
