// csvload: the paper's motivating ETL scenario end to end on the UDP —
// parse a crimes-like CSV across parallel lanes, then dictionary-encode a
// categorical column, comparing against the CPU baselines.
//
//	go run ./examples/csvload
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"udp"
	"udp/internal/core"
	"udp/internal/kernels/csvparse"
	"udp/internal/kernels/dict"
	"udp/internal/workload"
)

func main() {
	data := workload.CrimesCSV(workload.CSVSpec{Name: "crimes", Rows: 20000, Seed: 1})
	fmt.Printf("dataset: %.1f MB crimes-like CSV\n", float64(len(data))/1e6)

	// CPU baseline.
	t0 := time.Now()
	cpuTok := csvparse.Parse(data)
	cpuTime := time.Since(t0)
	fmt.Printf("CPU parse: %.1f MB/s\n", float64(len(data))/1e6/cpuTime.Seconds())

	// UDP: 64 lanes over record-aligned shards.
	im, err := udp.Compile(csvparse.BuildProgram())
	if err != nil {
		log.Fatal(err)
	}
	shards := udp.SplitRecords(data, udp.MaxLanes(im), '\n')
	res, err := udp.RunParallel(im, shards, nil)
	if err != nil {
		log.Fatal(err)
	}
	var udpTok []byte
	for _, o := range res.Outputs {
		udpTok = append(udpTok, o...)
	}
	if !bytes.Equal(udpTok, cpuTok) {
		log.Fatal("UDP and CPU tokenizations differ")
	}
	fmt.Printf("UDP parse: %d lanes, %.0f MB/s aggregate (verified identical output)\n",
		res.Lanes, res.Rate())

	// Extract the LocationDescription column (index 6) and
	// dictionary-encode it on the UDP.
	var col []string
	for _, row := range csvparse.Rows(cpuTok) {
		if len(row) > 6 {
			col = append(col, row[6])
		}
	}
	d, err := dict.NewDictionary(workload.LocationDomain)
	if err != nil {
		log.Fatal(err)
	}
	stream := dict.Join(col)
	dictIm, err := udp.Compile(d.BuildProgram(false))
	if err != nil {
		log.Fatal(err)
	}
	lane, err := udp.Run(dictIm, stream)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(lane.Output(), d.Encode(stream)) {
		log.Fatal("UDP dictionary codes differ from baseline")
	}
	fmt.Printf("dictionary-encoded %d values (%d B -> %d B), UDP lane rate %.0f MB/s\n",
		len(col), len(stream), len(lane.Output()),
		udp.RateMBps(len(stream), lane.Stats().Cycles))
	_ = core.R0
}
