// genomics: the paper's named future-work domain (Section 8:
// "exploration of additional new application spaces ... e.g.
// bioinformatics") built from the existing kernels: parse a FASTA stream
// with a CSV-style FSM, scan for IUPAC-degenerate motifs with the automata
// compiler, and 2-bit-pack the sequence with the bit-pack kernel — three UDP
// programs composed into one pipeline.
//
//	go run ./examples/genomics
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"udp"
	"udp/internal/core"
	"udp/internal/kernels/encodings"
	"udp/internal/kernels/pattern"
)

// fasta synthesizes records with headers and 70-column sequence lines.
func fasta(records, seqLen int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b bytes.Buffer
	bases := "ACGT"
	for r := 0; r < records; r++ {
		fmt.Fprintf(&b, ">chr%d synthetic\n", r+1)
		for i := 0; i < seqLen; i++ {
			if i > 0 && i%70 == 0 {
				b.WriteByte('\n')
			}
			b.WriteByte(bases[rng.Intn(4)])
		}
		// Plant a TATA box now and then.
		if rng.Intn(2) == 0 {
			b.WriteString("TATAAA")
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// buildFastaFilter strips headers and newlines, emitting only sequence
// bases (a two-state FSM: sequence vs header line).
func buildFastaFilter() *udp.Program {
	p := udp.NewProgram("fastafilter", 8)
	seq := p.AddState("seq", udp.ModeStream)
	hdr := p.AddState("hdr", udp.ModeStream)
	seq.On('>', hdr)
	seq.On('\n', seq)
	seq.Majority(seq, core.AOut8(core.RSym))
	hdr.On('\n', seq)
	hdr.Majority(hdr)
	return p
}

func main() {
	data := fasta(40, 4000, 7)
	fmt.Printf("FASTA input: %.1f KB, %d records\n", float64(len(data))/1024, 40)

	// Stage 1: strip headers/newlines on the UDP.
	im, err := udp.Compile(buildFastaFilter())
	if err != nil {
		log.Fatal(err)
	}
	lane, err := udp.RunLane(im, data)
	if err != nil {
		log.Fatal(err)
	}
	seq := append([]byte(nil), lane.Output()...)
	if bytes.ContainsAny(seq, ">\n") {
		log.Fatal("filter leaked non-sequence bytes")
	}
	fmt.Printf("stage 1 (parse): %d bases at %.0f MB/s/lane\n",
		len(seq), udp.RateMBps(len(data), lane.Stats().Cycles))

	// Stage 2: motif scan. IUPAC degenerate motif TATAWA (W = A|T) plus a
	// GC-box, compiled through the regex front end to an ADFA program.
	motifs := []string{"TATA(A|T)A", "GGGCGG"}
	set, err := pattern.Compile(motifs)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := set.BuildADFA()
	if err != nil {
		log.Fatal(err)
	}
	mim, err := udp.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	mlane, err := udp.RunLane(mim, seq)
	if err != nil {
		log.Fatal(err)
	}
	hits := pattern.Dedup(mlane.Matches())
	want := set.MatchCPU(seq)
	if len(hits) != len(want) {
		log.Fatalf("UDP found %d motifs, CPU %d", len(hits), len(want))
	}
	perMotif := map[int32]int{}
	for _, h := range hits {
		perMotif[h.ID]++
	}
	fmt.Printf("stage 2 (motif scan): %d hits (%s=%d, %s=%d) at %.0f MB/s/lane\n",
		len(hits), motifs[0], perMotif[0], motifs[1], perMotif[1],
		udp.RateMBps(len(seq), mlane.Stats().Cycles))

	// Stage 3: 2-bit pack the sequence (A=0 C=1 G=2 T=3) on the UDP.
	codes := make([]byte, len(seq))
	for i, b := range seq {
		codes[i] = byte(strings.IndexByte("ACGT", b))
	}
	packProg, err := encodings.BuildBitPacker(2)
	if err != nil {
		log.Fatal(err)
	}
	pim, err := udp.Compile(packProg)
	if err != nil {
		log.Fatal(err)
	}
	plane, err := udp.NewLane(pim, 0)
	if err != nil {
		log.Fatal(err)
	}
	plane.SetInput(codes)
	if err := plane.Run(0); err != nil {
		log.Fatal(err)
	}
	plane.FlushBits()
	packed := plane.Output()
	ref, err := encodings.BitPack(codes, 2)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(packed, ref) {
		log.Fatal("UDP packing differs from baseline")
	}
	fmt.Printf("stage 3 (2-bit pack): %d -> %d bytes (4.0x) at %.0f MB/s/lane\n",
		len(seq), len(packed), udp.RateMBps(len(seq), plane.Stats().Cycles))
}
